package core

import (
	"errors"
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/fabric"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

func newTestCluster(t *testing.T, computeBlades, memBlades int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(computeBlades, memBlades)
	cfg.MemoryBladeCapacity = 1 << 28 // 256 MB per blade keeps tests light
	cfg.CachePagesPerBlade = 1024
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{ComputeBlades: 0, MemoryBlades: 1}); err == nil {
		t.Error("zero compute blades accepted")
	}
	cfg := DefaultConfig(1, 1)
	cfg.CachePagesPerBlade = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Error("zero cache accepted")
	}
}

func TestStoreLoadRoundTripSingleBlade(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	p := c.Exec("app")
	vma, err := p.Mmap(1<<20, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.SpawnThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(vma.Base+64, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	got, err := th.Load(vma.Base + 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xdeadbeef {
		t.Errorf("load = %#x", got)
	}
	// Unwritten memory reads as zero.
	if got, _ := th.Load(vma.Base + 0x8000); got != 0 {
		t.Errorf("unwritten = %#x", got)
	}
}

func TestCrossBladeCoherence(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<20, mem.PermReadWrite)
	t0, _ := p.SpawnThread(0)
	t1, _ := p.SpawnThread(1)

	// Blade 0 writes; blade 1 must observe it (M->S flush path).
	if err := t0.Store(vma.Base, 42); err != nil {
		t.Fatal(err)
	}
	got, err := t1.Load(vma.Base)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("blade 1 read %d, want 42", got)
	}
	// Blade 1 overwrites (S->M with invalidation of blade 0); blade 0
	// must see the new value (M->S again).
	if err := t1.Store(vma.Base, 99); err != nil {
		t.Fatal(err)
	}
	got, err = t0.Load(vma.Base)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("blade 0 read %d, want 99", got)
	}
	if c.Collector().Counter(stats.CtrInvalidations) == 0 {
		t.Error("expected invalidations")
	}
}

func TestWriteWriteMigration(t *testing.T) {
	// Ownership ping-pong across 4 blades (M->M transitions).
	c := newTestCluster(t, 4, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	var threads []*Thread
	for i := 0; i < 4; i++ {
		th, _ := p.SpawnThread(i)
		threads = append(threads, th)
	}
	for round := 0; round < 3; round++ {
		for i, th := range threads {
			if err := th.Store(vma.Base+8, uint64(round*10+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, _ := threads[0].Load(vma.Base + 8)
	if got != 23 {
		t.Errorf("final value = %d, want 23", got)
	}
	if c.Collector().Counter(stats.CtrFlushedPages) == 0 {
		t.Error("M->M transitions should flush dirty pages")
	}
}

// TestCoherenceVsReference runs a deterministic interleaving of stores
// and loads from threads on different blades and checks every load
// against a sequential reference model — end-to-end validation that the
// protocol delivers the latest value.
func TestCoherenceVsReference(t *testing.T) {
	c := newTestCluster(t, 4, 2)
	p := c.Exec("app")
	const words = 512
	vma, _ := p.Mmap(words*8, mem.PermReadWrite)
	var threads []*Thread
	for i := 0; i < 4; i++ {
		th, _ := p.SpawnThread(i)
		threads = append(threads, th)
	}
	ref := make(map[mem.VA]uint64)
	rng := sim.NewRNG(7, "coh-ref")
	for op := 0; op < 2000; op++ {
		th := threads[rng.Intn(len(threads))]
		addr := vma.Base + mem.VA(rng.Intn(words)*8)
		if rng.Bool(0.5) {
			val := rng.Uint64()
			if err := th.Store(addr, val); err != nil {
				t.Fatal(err)
			}
			ref[addr] = val
		} else {
			got, err := th.Load(addr)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref[addr] {
				t.Fatalf("op %d: blade %d load %#x = %d, want %d",
					op, th.BladeID(), uint64(addr), got, ref[addr])
			}
		}
	}
}

func TestEvictionWritebackSurvives(t *testing.T) {
	// Cache of 64 pages; write 256 pages; everything must read back.
	cfg := DefaultConfig(1, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 64
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Exec("app")
	vma, _ := p.Mmap(256*mem.PageSize, mem.PermReadWrite)
	th, _ := p.SpawnThread(0)
	for i := 0; i < 256; i++ {
		if err := th.Store(vma.Base+mem.VA(i*mem.PageSize)+8, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Collector().Counter(stats.CtrEvictions) == 0 {
		t.Fatal("expected evictions")
	}
	if c.Collector().Counter(stats.CtrWritebacks) == 0 {
		t.Fatal("expected dirty writebacks")
	}
	for i := 0; i < 256; i++ {
		got, err := th.Load(vma.Base + mem.VA(i*mem.PageSize) + 8)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i)+1 {
			t.Fatalf("page %d read %d, want %d", i, got, i+1)
		}
	}
}

func TestProtectionEnforcedOnFaults(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	p := c.Exec("app")
	ro, _ := p.Mmap(1<<16, mem.PermRead)
	th, _ := p.SpawnThread(0)
	// Reads are fine; writes are rejected by the data plane.
	if _, err := th.Load(ro.Base); err != nil {
		t.Fatalf("read on read-only: %v", err)
	}
	if err := th.Store(ro.Base, 1); !errors.Is(err, ctrlplane.ErrPermission) {
		t.Errorf("write on read-only = %v, want ErrPermission", err)
	}
	// Unmapped access rejected.
	if _, err := th.Load(0x10); !errors.Is(err, ctrlplane.ErrPermission) {
		t.Errorf("unmapped load = %v", err)
	}
	// Another process cannot touch this vma.
	q := c.Exec("other")
	qt, _ := q.SpawnThread(1)
	if _, err := qt.Load(ro.Base); !errors.Is(err, ctrlplane.ErrPermission) {
		t.Errorf("cross-process load = %v", err)
	}
	if c.Collector().Counter(stats.CtrRejected) == 0 {
		t.Error("rejects not counted")
	}
}

func TestSessionDomainIsolationEndToEnd(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	p := c.Exec("server")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	sess := p.CreateDomain()
	if err := p.GrantDomain(sess, vma.Base, 1<<16, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	th, _ := p.SpawnThread(0)
	if err := th.Store(vma.Base, 7); err != nil {
		t.Fatal(err)
	}
	// A reader using the session domain: emulate by checking protection
	// directly (threads carry their process PDID).
	if err := c.Controller().Protection().Check(sess, vma.Base, mem.PermRead); err != nil {
		t.Error(err)
	}
	if err := c.Controller().Protection().Check(sess, vma.Base, mem.PermReadWrite); err == nil {
		t.Error("session wrote through read grant")
	}
}

func TestTransitionLatencyBands(t *testing.T) {
	// Reproduces the latency structure of Figure 7 (left): transitions
	// without invalidation land near 9 µs; M->S and M->M are about 2x.
	c := newTestCluster(t, 3, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<20, mem.PermReadWrite)
	a, _ := p.SpawnThread(0)
	b, _ := p.SpawnThread(1)

	measure := func(th *Thread, va mem.VA, write bool) sim.Duration {
		start := c.Now()
		if err := th.Touch(va, write); err != nil {
			t.Fatal(err)
		}
		return c.Now().Sub(start)
	}

	// I->S: cold read.
	iS := measure(a, vma.Base, false)
	// S->S: second blade reads the same page.
	sS := measure(b, vma.Base, false)
	// S->M: blade A writes (invalidates B in parallel with fetch).
	sM := measure(a, vma.Base, true)
	// M->M: blade B writes (serial: flush A, then fetch).
	mM := measure(b, vma.Base, true)
	// M->S: blade A reads (serial downgrade of B).
	mS := measure(a, vma.Base, false)

	within := func(name string, d, lo, hi sim.Duration) {
		t.Helper()
		if d < lo || d > hi {
			t.Errorf("%s latency = %v, want [%v, %v]", name, d, lo, hi)
		}
	}
	within("I->S", iS, 6*sim.Microsecond, 13*sim.Microsecond)
	within("S->S", sS, 6*sim.Microsecond, 13*sim.Microsecond)
	within("S->M", sM, 6*sim.Microsecond, 14*sim.Microsecond)
	within("M->M", mM, 13*sim.Microsecond, 26*sim.Microsecond)
	within("M->S", mS, 13*sim.Microsecond, 26*sim.Microsecond)
	if mM < sS+5*sim.Microsecond {
		t.Errorf("M->M (%v) should be clearly slower than S->S (%v)", mM, sS)
	}
}

func TestFalseInvalidationCounting(t *testing.T) {
	// Two dirty pages in one 16 KB region at blade 0; blade 1 reads one
	// page -> the other flushed page is a false invalidation.
	c := newTestCluster(t, 2, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(16<<10, mem.PermReadWrite)
	a, _ := p.SpawnThread(0)
	b, _ := p.SpawnThread(1)
	if err := a.Store(vma.Base, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Store(vma.Base+mem.PageSize, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(vma.Base); err != nil {
		t.Fatal(err)
	}
	col := c.Collector()
	if col.Counter(stats.CtrFlushedPages) != 2 {
		t.Errorf("flushed = %d, want 2", col.Counter(stats.CtrFlushedPages))
	}
	if col.Counter(stats.CtrFalseInvals) != 1 {
		t.Errorf("false invals = %d, want 1", col.Counter(stats.CtrFalseInvals))
	}
	// And the value must still be correct.
	if got, _ := b.Load(vma.Base + mem.PageSize); got != 2 {
		t.Errorf("false-invalidated page lost its data: %d", got)
	}
}

func TestTimeoutResetRecovery(t *testing.T) {
	// Persistently drop invalidation deliveries to blade 0 so blade 1's
	// write can never collect its ACK; recovery must go through
	// retransmissions and the §4.4 reset, and the system must stay
	// functionally correct afterwards.
	c := newTestCluster(t, 2, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	a, _ := p.SpawnThread(0)
	b, _ := p.SpawnThread(1)
	if err := a.Store(vma.Base, 123); err != nil {
		t.Fatal(err)
	}
	drops := 0
	c.InjectFailure(func(from, to fabric.NodeID) bool {
		// Drop the first two multicast deliveries to blade 0.
		if to == 0 && drops < 2 {
			drops++
			return true
		}
		return false
	})
	// Blade 1 writes: requires invalidating blade 0's M copy. First
	// delivery is dropped; retransmits are deduped; reset recovers.
	if err := b.Store(vma.Base, 456); err != nil {
		t.Fatal(err)
	}
	c.InjectFailure(nil)
	if drops == 0 {
		t.Fatal("drop hook never fired")
	}
	col := c.Collector()
	if col.Counter(stats.CtrRetransmits) == 0 {
		t.Error("expected retransmissions")
	}
	if col.Counter(stats.CtrResets) == 0 {
		t.Error("expected a coherence reset")
	}
	// The flushed-on-reset value must persist and the new value wins.
	if got, _ := a.Load(vma.Base); got != 456 {
		t.Errorf("post-recovery read = %d, want 456", got)
	}
}

func TestSwitchFailover(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	a, _ := p.SpawnThread(0)
	b, _ := p.SpawnThread(1)
	if err := a.Store(vma.Base, 777); err != nil {
		t.Fatal(err)
	}
	c.Failover()
	// After failover: translation/protection reconstructed, directory
	// reset; data must still be readable from the other blade.
	got, err := b.Load(vma.Base)
	if err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Errorf("post-failover read = %d, want 777", got)
	}
	// New allocations still work.
	v2, err := p.Mmap(1<<12, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Store(v2.Base, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMultiThreadWorkloadRun(t *testing.T) {
	// Workload-driven execution: two threads on different blades hammer
	// a shared range; run to completion and check accounting.
	c := newTestCluster(t, 2, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<20, mem.PermReadWrite)
	for i := 0; i < 2; i++ {
		th, err := p.SpawnThread(i)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(uint64(i+1), "wl")
		n := 0
		th.Start(func() (mem.VA, bool, bool) {
			if n >= 3000 {
				return 0, false, false
			}
			n++
			return vma.Base + mem.VA(rng.Intn(256)*mem.PageSize), rng.Bool(0.3), true
		}, nil)
	}
	end := c.RunThreads()
	if end == 0 {
		t.Fatal("no virtual time elapsed")
	}
	col := c.Collector()
	if col.Counter(stats.CtrAccesses) < 6000 {
		t.Errorf("accesses = %d, want >= 6000", col.Counter(stats.CtrAccesses))
	}
	for _, th := range c.threads {
		if !th.Done() || th.Ops() != 3000 {
			t.Errorf("thread ops = %d done=%v", th.Ops(), th.Done())
		}
	}
	if col.Counter(stats.CtrRemoteAccesses) == 0 {
		t.Error("expected remote accesses")
	}
}

func TestPSOFasterThanTSOOnSharedWrites(t *testing.T) {
	run := func(model Consistency) sim.Time {
		cfg := DefaultConfig(2, 1)
		cfg.MemoryBladeCapacity = 1 << 28
		cfg.CachePagesPerBlade = 2048
		cfg.Consistency = model
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := c.Exec("app")
		vma, _ := p.Mmap(1<<22, mem.PermReadWrite)
		for i := 0; i < 2; i++ {
			th, _ := p.SpawnThread(i)
			rng := sim.NewRNG(uint64(i+1), "pso")
			n := 0
			th.Start(func() (mem.VA, bool, bool) {
				if n >= 2000 {
					return 0, false, false
				}
				n++
				// Write-heavy traffic over a shared range.
				return vma.Base + mem.VA(rng.Intn(512)*mem.PageSize), rng.Bool(0.8), true
			}, nil)
		}
		return c.RunThreads()
	}
	tso := run(TSO)
	pso := run(PSO)
	if pso >= tso {
		t.Errorf("PSO (%d) should beat TSO (%d) on write-heavy sharing", pso, tso)
	}
}

func TestMunmapRemovesAccess(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	th, _ := p.SpawnThread(0)
	if err := th.Store(vma.Base, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Munmap(vma.Base); err != nil {
		t.Fatal(err)
	}
	// The cached copy remains until invalidated, but new faults (other
	// pages) are rejected.
	if err := th.Touch(vma.Base+0x8000, false); !errors.Is(err, ctrlplane.ErrPermission) {
		t.Errorf("fault after munmap = %v", err)
	}
}

func TestBoundedSplittingReactsToFalseSharing(t *testing.T) {
	// Hot false sharing in one region must trigger splits within a few
	// epochs.
	cfg := DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 2048
	cfg.SplitterEpoch = 1 * sim.Millisecond
	cfg.InitialRegionSize = 64 << 10
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Exec("app")
	vma, _ := p.Mmap(64<<10, mem.PermReadWrite)
	a, _ := p.SpawnThread(0)
	b, _ := p.SpawnThread(1)
	// Blade 0 dirties many pages in the region; blade 1 repeatedly reads
	// one page -> false invalidations pile up on the region.
	for round := 0; round < 40; round++ {
		for pg := 0; pg < 8; pg++ {
			if err := a.Store(vma.Base+mem.VA(pg*mem.PageSize), uint64(round)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.Load(vma.Base + 15*mem.PageSize); err != nil {
			t.Fatal(err)
		}
		c.AdvanceTime(2 * sim.Millisecond)
	}
	if c.Splitter().Splits() == 0 {
		t.Error("bounded splitting never split a hot region")
	}
	if c.Collector().Counter(stats.CtrFalseInvals) == 0 {
		t.Error("no false invalidations recorded")
	}
}
