package core

// Request-robustness layer: deadlines, retries, backoff and brownout —
// the degenerate configurations (satellite coverage) and the kill-storm
// accounting on a single rack.

import (
	"testing"

	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// conservation asserts the serving identity: every arrival meets
// exactly one terminal fate.
func conservation(t *testing.T, c *Cluster) {
	t.Helper()
	col := c.Collector()
	arr := col.Counter(stats.CtrServeArrivals)
	settled := col.Counter(stats.CtrServeCompleted) + col.Counter(stats.CtrServeThrottled) +
		col.Counter(stats.CtrServeDropped) + col.Counter(stats.CtrServeShed) +
		col.Counter(stats.CtrServeTimedOut) + col.Counter(stats.CtrServeFailed)
	if arr != settled {
		t.Errorf("request conservation violated: %d arrivals != %d settled", arr, settled)
	}
}

// TestServeDeadlineShorterThanService: a deadline no service can meet
// (1 ns — shorter than even a cache hit) times out every admitted
// request; with zero retries each is terminal on its first attempt,
// the run still terminates, and conservation holds.
func TestServeDeadlineShorterThanService(t *testing.T) {
	c := serveCluster(t, 1)
	s := newTestServing(t, c, ServeConfig{
		Horizon:  time2ms,
		Deadline: sim.Nanosecond,
	})
	addServeTenant(t, c, s, "a", 0, 50*sim.Microsecond, nil)
	mustRun(t, s)

	col := c.Collector()
	if got := col.Counter(stats.CtrServeCompleted); got != 0 {
		t.Errorf("completed %d requests under a 1ns deadline", got)
	}
	if col.Counter(stats.CtrServeTimedOut) == 0 {
		t.Error("nothing timed out under a 1ns deadline")
	}
	if got := col.Counter(stats.CtrServeRetried); got != 0 {
		t.Errorf("retried %d with MaxRetries=0", got)
	}
	conservation(t, c)
}

// TestServeDeadlineWithRetriesStillTerminates: a deadline shorter than
// one fault round trip plus a retry budget — every attempt times out,
// every request burns its full budget, and the retried count is
// exactly MaxRetries per terminal timeout.
func TestServeDeadlineWithRetriesStillTerminates(t *testing.T) {
	c := serveCluster(t, 1)
	const retries = 3
	s := newTestServing(t, c, ServeConfig{
		Horizon:      time2ms,
		Deadline:     100 * sim.Nanosecond, // shorter than any fault RTT
		MaxRetries:   retries,
		RetryBackoff: sim.Microsecond,
	})
	addServeTenant(t, c, s, "a", 0, 50*sim.Microsecond, nil)
	mustRun(t, s)

	col := c.Collector()
	timedOut := col.Counter(stats.CtrServeTimedOut)
	retried := col.Counter(stats.CtrServeRetried)
	if timedOut == 0 {
		t.Fatal("nothing timed out")
	}
	if retried != timedOut*retries {
		t.Errorf("retried = %d, want %d (MaxRetries per terminal timeout)", retried, timedOut*retries)
	}
	if col.Counter(stats.CtrServeCompleted) != 0 {
		t.Error("completed requests under an unmeetable deadline")
	}
	conservation(t, c)
}

// TestServeGenerousDeadlineCompletesEverything: a deadline far above
// the service time is invisible — nothing times out, nothing retries,
// and every arrival completes.
func TestServeGenerousDeadlineCompletesEverything(t *testing.T) {
	c := serveCluster(t, 1)
	s := newTestServing(t, c, ServeConfig{
		Horizon:    time2ms,
		Deadline:   10 * sim.Millisecond,
		MaxRetries: 2,
	})
	addServeTenant(t, c, s, "a", 0, 50*sim.Microsecond, nil)
	mustRun(t, s)

	col := c.Collector()
	if col.Counter(stats.CtrServeTimedOut) != 0 || col.Counter(stats.CtrServeRetried) != 0 {
		t.Errorf("generous deadline produced timeouts/retries: %d/%d",
			col.Counter(stats.CtrServeTimedOut), col.Counter(stats.CtrServeRetried))
	}
	if col.Counter(stats.CtrServeCompleted) != col.Counter(stats.CtrServeArrivals) {
		t.Error("generous deadline failed to complete every arrival")
	}
	conservation(t, c)
}

// TestServePerTenantDeadlineOverride: TenantWorkload.Deadline overrides
// the run-wide budget per share — an unmeetable tenant override times
// out while the sibling under the generous run default completes.
func TestServePerTenantDeadlineOverride(t *testing.T) {
	c := serveCluster(t, 2)
	s := newTestServing(t, c, ServeConfig{
		Horizon:  time2ms,
		Deadline: 10 * sim.Millisecond,
	})
	addServeTenant(t, c, s, "slow", 0, 50*sim.Microsecond, nil)

	p := c.Exec("tight")
	vma, err := p.Mmap(64*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant(TenantWorkload{
		Name:     "tight",
		Proc:     p,
		Blade:    1,
		Arrival:  fixedGap(50 * sim.Microsecond),
		NextOp:   roundRobinOps(vma.Base, 64),
		Deadline: sim.Nanosecond,
	}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, s)

	col := c.Collector()
	if got := col.Counter("serve_timedout[tight]"); got == 0 {
		t.Error("tight tenant's 1ns override never timed out")
	}
	if got := col.Counter("serve_timedout[slow]"); got != 0 {
		t.Errorf("slow tenant timed out %d times under a 10ms deadline", got)
	}
	if got := col.Counter("serve_completed[slow]"); got == 0 {
		t.Error("slow tenant completed nothing")
	}
	conservation(t, c)
}

// TestRetryBackoffClamp pins the exponential backoff arithmetic at its
// edges: monotone growth, the MaxBackoff clamp, the 64x default clamp,
// and no overflow at absurd attempt counts or bases.
func TestRetryBackoffClamp(t *testing.T) {
	rng := sim.NewRNG(1, "backoff-test")
	base := 5 * sim.Microsecond
	cfg := &ServeConfig{RetryBackoff: base, MaxBackoff: 320 * sim.Microsecond}
	prev := sim.Duration(0)
	for attempt := 1; attempt <= 80; attempt++ {
		d := cfg.retryBackoff(attempt, rng)
		if d < base || d >= cfg.MaxBackoff+base {
			t.Fatalf("attempt %d: backoff %v outside [base, max+jitter)", attempt, d)
		}
		if attempt <= 7 && d+base < prev {
			// Jitter is < base, so the exponential trend must dominate
			// until the clamp engages (5us << 6 = 320us at attempt 7).
			t.Fatalf("attempt %d: backoff %v fell below previous %v", attempt, d, prev)
		}
		prev = d
	}

	// Default clamp: 64x the base.
	cfg = &ServeConfig{RetryBackoff: base}
	for attempt := 60; attempt <= 64; attempt++ {
		if d := cfg.retryBackoff(attempt, rng); d >= 64*base+base {
			t.Fatalf("attempt %d: default clamp missed (%v)", attempt, d)
		}
	}

	// Overflow guard: a base too large to shift must clamp to itself,
	// never wrap negative.
	cfg = &ServeConfig{RetryBackoff: sim.Duration(1) << 60}
	for attempt := 1; attempt <= 100; attempt++ {
		if d := cfg.retryBackoff(attempt, rng); d < 0 {
			t.Fatalf("attempt %d: backoff overflowed to %v", attempt, d)
		}
	}

	// Zero base with retries enabled defaults to 2us.
	cfg = &ServeConfig{}
	if d := cfg.retryBackoff(1, rng); d < 2*sim.Microsecond || d >= 4*sim.Microsecond {
		t.Fatalf("zero-base backoff %v, want [2us, 4us)", d)
	}
}

// TestServeKillStormSingleRack: a blade kill under serving load on one
// rack — accesses to the dead blade stall in the §4.4 fault machinery,
// deadlines expire and retries re-admit until the re-home completes;
// afterwards traffic completes again. Conservation holds throughout
// and the kill/recovery counters fire.
func TestServeKillStormSingleRack(t *testing.T) {
	cfg := DefaultConfig(1, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 64
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServing(t, c, ServeConfig{
		Horizon:      time2ms,
		Deadline:     200 * sim.Microsecond,
		MaxRetries:   2,
		RetryBackoff: 5 * sim.Microsecond,
		Brownout:     0.5,
		Seed:         3,
	})
	p := c.Exec("app")
	vma, err := p.Mmap(256*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant(TenantWorkload{
		Name:    "app",
		Proc:    p,
		Blade:   0,
		Arrival: fixedGap(20 * sim.Microsecond),
		NextOp:  roundRobinOps(vma.Base, 256),
	}); err != nil {
		t.Fatal(err)
	}
	victim, err := c.Controller().Allocator().Translate(vma.Base)
	if err != nil {
		t.Fatal(err)
	}
	var krep KillReport
	killed := false
	c.Engine().Schedule(500*sim.Microsecond, func() {
		c.KillMemBladeAsync(victim, func(r KillReport, e error) {
			if e != nil {
				t.Errorf("kill: %v", e)
			}
			krep, killed = r, true
		})
	})
	mustRun(t, s)

	if !killed {
		t.Fatal("kill recovery never completed")
	}
	if krep.Blackout() < c.Config().Migration.DetectionDelay {
		t.Fatalf("blackout %v shorter than detection delay", krep.Blackout())
	}
	col := c.Collector()
	if col.Counter(stats.CtrBladeKills) != 1 || col.Counter(stats.CtrBladeRecoveries) != 1 {
		t.Errorf("kill/recovery counters = %d/%d, want 1/1",
			col.Counter(stats.CtrBladeKills), col.Counter(stats.CtrBladeRecoveries))
	}
	if col.Counter(stats.CtrServeShed) == 0 {
		t.Error("brownout shed nothing during the recovery blackout")
	}
	if col.Counter(stats.CtrServeCompleted) == 0 {
		t.Error("nothing completed around the kill")
	}
	conservation(t, c)
}

const time2ms = 2 * sim.Millisecond
