// Package core assembles the MIND topology. A Rack is the paper's
// Figure 2 unit: compute blades with local DRAM caches, passive memory
// blades, and the programmable switch hosting the control plane
// (allocation, protection, processes, Bounded Splitting) and data plane
// (translation, protection checks, cache directory, RDMA
// virtualization). A Pod composes N racks over an inter-rack
// interconnect with cross-rack blade borrowing and hot-page promotion;
// Cluster is the single-rack facade (a 1-rack Pod) the paper-facing
// consumers use. The package exposes the transparent virtual memory API
// applications use — mmap/munmap, Load/Store — plus the workload-driven
// execution engine the evaluation harness runs.
package core

import (
	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/fabric"
	"mind/internal/sim"
	"mind/internal/switchasic"
)

// Consistency selects the memory consistency model (§6.1, §7.1).
type Consistency int

const (
	// TSO is MIND's default: writes fault synchronously (x86 page-fault
	// limitation, §6.1).
	TSO Consistency = iota
	// PSO simulates Process Store Order: writes propagate asynchronously;
	// reads to pages with pending writes block (the MIND-PSO variant).
	PSO
	// PSOPlus is PSO with infinite switch directory capacity (the
	// MIND-PSO+ variant).
	PSOPlus
)

func (c Consistency) String() string {
	switch c {
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	case PSOPlus:
		return "PSO+"
	default:
		return "consistency(?)"
	}
}

// Config assembles a cluster.
type Config struct {
	// ComputeBlades and MemoryBlades size the rack (§7: up to 8 compute
	// blades, memory blades hosted on one server).
	ComputeBlades int
	MemoryBlades  int
	// MemoryBladeCapacity is each memory blade's capacity (power of two).
	MemoryBladeCapacity uint64
	// CachePagesPerBlade sizes each compute blade's local DRAM cache; the
	// paper uses 512 MB ≈ 25% of workload footprint (§7).
	CachePagesPerBlade int
	// Consistency selects TSO (default), PSO, or PSO+.
	Consistency Consistency
	// Placement selects the allocation placement policy (§4.1).
	Placement ctrlplane.PlacementPolicy
	// InitialRegionSize and TopLevelRegionSize parameterize directory
	// granularity (§5; defaults 16 KB and 2 MB).
	InitialRegionSize  uint64
	TopLevelRegionSize uint64
	// SplitterEpoch is the Bounded Splitting epoch (default 100 ms). Set
	// DisableSplitting for fixed-granularity ablations (Figure 9 left).
	SplitterEpoch    sim.Duration
	DisableSplitting bool
	// SplitterC is the initial fairness constant c (Eq. 1).
	SplitterC float64
	// ASIC, Fabric and Blade carry the hardware calibration constants.
	ASIC   switchasic.Config
	Fabric fabric.Config
	Blade  computeblade.Config
	// ThinkTime is the per-access CPU cost threads pay between memory
	// accesses (models instruction execution; default 30 ns).
	ThinkTime sim.Duration
	// StoreBufferDepth bounds outstanding async writes under PSO.
	StoreBufferDepth int
	// Migration throttles live page migration during blade drains and
	// paces failure detection (online memory elasticity).
	Migration MigrationConfig
	// SequentialInvalidation disables the multicast engine and sends
	// invalidations one by one (ablation for §4.3.2).
	SequentialInvalidation bool
	// ExclusiveReads enables the MESI-style Exclusive grant on cold reads
	// (§8 extension): private read-then-write patterns save the upgrade
	// fault, at the cost of serial downgrades for read-shared data.
	ExclusiveReads bool
	// Seed drives all deterministic randomness.
	Seed uint64
}

// MigrationConfig paces online memory elasticity. A drain moves pages in
// batches of BatchPages with BatchGap of idle fabric time between
// batches, so foreground traffic keeps flowing through the same NICs;
// DetectionDelay models how long the control plane takes to notice a
// dead memory blade before recovery starts.
type MigrationConfig struct {
	BatchPages     int
	BatchGap       sim.Duration
	DetectionDelay sim.Duration
}

// DefaultMigrationConfig returns the drain throttle operating point
// (see BenchmarkDrainBatchSize for the measured tradeoff).
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		BatchPages:     32,
		BatchGap:       3 * sim.Microsecond,
		DetectionDelay: 50 * sim.Microsecond,
	}
}

// DefaultConfig returns a rack calibrated to the paper's testbed: the
// given number of compute/memory blades, 30k directory slots, 45k rules,
// 16 KB initial regions, 100 ms epochs.
func DefaultConfig(computeBlades, memoryBlades int) Config {
	return Config{
		ComputeBlades:       computeBlades,
		MemoryBlades:        memoryBlades,
		MemoryBladeCapacity: 1 << 32, // 4 GB per blade
		CachePagesPerBlade:  128 << 10 / 4,
		Consistency:         TSO,
		Placement:           ctrlplane.PlaceLeastLoaded,
		InitialRegionSize:   16 << 10,
		TopLevelRegionSize:  2 << 20,
		SplitterEpoch:       100 * sim.Millisecond,
		SplitterC:           4,
		ASIC:                switchasic.DefaultConfig(),
		Fabric:              fabric.DefaultConfig(),
		Blade:               computeblade.DefaultConfig(0, 0),
		ThinkTime:           30 * sim.Nanosecond,
		StoreBufferDepth:    16,
		Migration:           DefaultMigrationConfig(),
		Seed:                1,
	}
}
