package core

import (
	"fmt"

	"mind/internal/coherence"
	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/fabric"
	"mind/internal/mem"
	"mind/internal/memblade"
	"mind/internal/sim"
	"mind/internal/stats"
)

// memNodeBase offsets memory-blade fabric node IDs away from compute
// blades'.
const memNodeBase fabric.NodeID = 1000

// Cluster is one simulated MIND rack.
type Cluster struct {
	cfg Config

	eng *sim.Engine
	fab *fabric.Fabric
	col *stats.Collector

	ctl      *ctrlplane.Controller
	dir      *coherence.Directory
	splitter *ctrlplane.Splitter

	cblades []*computeblade.Blade
	mblades []*memblade.Blade

	threads       []*Thread
	activeThreads int
	epochTick     *sim.Event

	// Free lists for the pooled fabric-glue jobs (single-threaded
	// engine context).
	reqFree sim.Pool[reqJob]
	wbFree  sim.Pool[wbJob]

	hLostWrites    stats.Handle
	hBladeEvents   stats.Handle
	hMigratedPages stats.Handle
}

// reqJob carries one page-fault request blade -> switch; jobs are pooled
// and recycled as soon as the request is handed to the directory.
type reqJob struct {
	c     *Cluster
	blade int
	pdid  mem.PDID
	va    mem.VA
	want  mem.Perm
	done  func(coherence.Completion)
}

// reqAtSwitch runs when the fault request finishes ingress processing.
func reqAtSwitch(x any) {
	j := x.(*reqJob)
	c, blade, pdid, va, want, done := j.c, j.blade, j.pdid, j.va, j.want, j.done
	j.done = nil
	c.reqFree.Put(j)
	c.dir.RequestPage(blade, pdid, va, want, done)
}

// wbJob carries one page writeback blade -> switch -> memory blade.
type wbJob struct {
	c    *Cluster
	va   mem.VA
	data []byte
	home fabric.NodeID
	done func()
}

// wbAtSwitch runs when the writeback reaches the switch: translate and
// forward to the home memory blade (or account a lost write).
func wbAtSwitch(x any) {
	j := x.(*wbJob)
	c := j.c
	home, err := c.ctl.Allocator().Translate(j.va)
	if err != nil {
		c.freeWB(j, true) // unmapped (racing munmap); drop
		return
	}
	if c.mblades[int(home)].Dead() {
		// One-sided write to a failed blade: the NIC's reliable
		// connection errors out after the send attempt. The data is
		// lost, but the completion (with error) still fires — flush
		// barriers must not wedge on a dead target (§4.4).
		c.col.IncH(c.hLostWrites, 1)
		done := j.done
		c.freeWB(j, false)
		c.eng.ScheduleArg(c.fab.OneWayBase(fabric.PageBytes), sim.CallFunc, done)
		return
	}
	j.home = fabric.NodeID(home)
	c.fab.SendFromSwitchArg(memNodeBase+j.home, fabric.PageBytes, wbLanded, j)
}

// wbLanded runs at the memory blade: persist the page and complete.
func wbLanded(x any) {
	j := x.(*wbJob)
	c, va, data, home, done := j.c, j.va, j.data, j.home, j.done
	c.freeWB(j, false)
	c.mblades[int(home)].WritePage(va, data)
	done()
}

func (c *Cluster) freeWB(j *wbJob, callDone bool) {
	done := j.done
	j.done, j.data = nil, nil
	c.wbFree.Put(j)
	if callDone {
		done()
	}
}

// NewCluster builds and wires a rack.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.ComputeBlades < 1 || cfg.MemoryBlades < 1 {
		return nil, fmt.Errorf("core: need at least one compute and one memory blade")
	}
	if cfg.CachePagesPerBlade < 1 {
		return nil, fmt.Errorf("core: cache must hold at least one page")
	}
	if cfg.StoreBufferDepth == 0 {
		cfg.StoreBufferDepth = 16
	}
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = 30 * sim.Nanosecond
	}
	if cfg.Migration.BatchPages == 0 {
		cfg.Migration.BatchPages = DefaultMigrationConfig().BatchPages
	}
	if cfg.Migration.BatchGap == 0 {
		cfg.Migration.BatchGap = DefaultMigrationConfig().BatchGap
	}
	if cfg.Migration.DetectionDelay == 0 {
		cfg.Migration.DetectionDelay = DefaultMigrationConfig().DetectionDelay
	}

	asicCfg := cfg.ASIC
	if cfg.Consistency == PSOPlus {
		// MIND-PSO+ simulates infinite directory capacity (§7.1).
		asicCfg.SlotCapacity = 0
	}

	c := &Cluster{
		cfg: cfg,
		eng: sim.NewEngine(),
		col: stats.NewCollector(),
	}
	c.hLostWrites = c.col.Handle(stats.CtrLostWrites)
	c.hBladeEvents = c.col.Handle(stats.CtrBladeEvents)
	c.hMigratedPages = c.col.Handle(stats.CtrMigratedPages)
	c.fab = fabric.New(c.eng, cfg.Fabric)
	c.ctl = ctrlplane.NewController(asicCfg, cfg.Placement, cfg.ComputeBlades)

	for i := 0; i < cfg.ComputeBlades; i++ {
		c.fab.AddNode(fabric.NodeID(i))
	}
	for m := 0; m < cfg.MemoryBlades; m++ {
		c.fab.AddNode(memNodeBase + fabric.NodeID(m))
		if _, err := c.ctl.Allocator().AddBlade(cfg.MemoryBladeCapacity); err != nil {
			return nil, fmt.Errorf("core: register memory blade %d: %w", m, err)
		}
		c.mblades = append(c.mblades, memblade.New(m))
	}

	c.dir = coherence.NewDirectory(coherence.Config{
		InitialRegionSize:      cfg.InitialRegionSize,
		TopLevelSize:           cfg.TopLevelRegionSize,
		SequentialInvalidation: cfg.SequentialInvalidation,
		ExclusiveOnColdRead:    cfg.ExclusiveReads,
	}, coherence.Deps{
		Engine:    c.eng,
		Fabric:    c.fab,
		ASIC:      c.ctl.ASIC(),
		Collector: c.col,
		Translate: c.ctl.Allocator().Translate,
		Protect:   c.ctl.Protection().Check,
		MemNode:   func(id ctrlplane.BladeID) fabric.NodeID { return memNodeBase + fabric.NodeID(id) },
		BladeNode: func(i int) fabric.NodeID { return fabric.NodeID(i) },
	})

	for i := 0; i < cfg.ComputeBlades; i++ {
		bcfg := cfg.Blade
		if bcfg.PageFaultCost == 0 {
			bcfg = computeblade.DefaultConfig(i, cfg.CachePagesPerBlade)
		}
		bcfg.ID = i
		bcfg.CachePages = cfg.CachePagesPerBlade
		blade := computeblade.New(bcfg, computeblade.Deps{
			Engine:    c.eng,
			Collector: c.col,
			SendRequest: func(i int) func(mem.PDID, mem.VA, mem.Perm, func(coherence.Completion)) {
				return func(pdid mem.PDID, va mem.VA, want mem.Perm, done func(coherence.Completion)) {
					j := c.newReqJob()
					j.blade, j.pdid, j.va, j.want, j.done = i, pdid, va, want, done
					c.fab.SendToSwitchArg(fabric.NodeID(i), fabric.CtrlMsgBytes, reqAtSwitch, j)
				}
			}(i),
			Writeback: func(i int) func(mem.VA, []byte, func()) {
				return func(va mem.VA, data []byte, done func()) {
					c.writeback(fabric.NodeID(i), va, data, done)
				}
			}(i),
			FetchData: c.fetchData,
			Reset: func(va mem.VA, done func()) {
				// Reset goes through the (slow) control plane (§4.4).
				c.fab.CtrlCall(fabric.SwitchNode, func() {
					c.dir.ResetRegion(va, done)
				})
			},
		})
		c.cblades = append(c.cblades, blade)
		c.dir.RegisterBlade(i, blade)
	}

	// Bounded Splitting runs as a control-plane epoch loop (§5).
	if !cfg.DisableSplitting {
		scfg := ctrlplane.DefaultSplitterConfig()
		if cfg.SplitterEpoch > 0 {
			scfg.Epoch = int64(cfg.SplitterEpoch)
		}
		if cfg.TopLevelRegionSize > 0 {
			scfg.TopLevelSize = cfg.TopLevelRegionSize
		}
		if cfg.SplitterC > 0 {
			scfg.C = cfg.SplitterC
		}
		c.splitter = ctrlplane.NewSplitter(scfg, c.dir)
		c.scheduleEpoch(sim.Duration(scfg.Epoch))
	}
	return c, nil
}

func (c *Cluster) scheduleEpoch(epoch sim.Duration) {
	c.epochTick = c.eng.Schedule(epoch, func() {
		c.splitter.RunEpoch()
		c.col.Series("directory_entries").Append(c.eng.Now(), float64(c.dir.SlotsInUse()))
		c.scheduleEpoch(epoch)
	})
}

// StopEpochs cancels the splitter's epoch loop (end of run).
func (c *Cluster) StopEpochs() {
	if c.epochTick != nil {
		c.eng.Cancel(c.epochTick)
		c.epochTick = nil
	}
}

// newReqJob takes a request job from the free list (or allocates one).
func (c *Cluster) newReqJob() *reqJob {
	if j := c.reqFree.Get(); j != nil {
		return j
	}
	return &reqJob{c: c}
}

// writeback models a one-sided RDMA page write from a blade to the home
// memory blade, via the switch.
func (c *Cluster) writeback(from fabric.NodeID, va mem.VA, data []byte, done func()) {
	j := c.wbFree.Get()
	if j == nil {
		j = &wbJob{c: c}
	}
	j.va, j.data, j.done = va, data, done
	c.fab.SendToSwitchArg(from, fabric.PageBytes, wbAtSwitch, j)
}

// fetchData copies page bytes from the home memory blade at the simulated
// moment of delivery.
func (c *Cluster) fetchData(va mem.VA) []byte {
	home, err := c.ctl.Allocator().Translate(va)
	if err != nil {
		return nil
	}
	return c.mblades[int(home)].ReadPage(va)
}

// Engine exposes the simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Collector exposes run metrics.
func (c *Cluster) Collector() *stats.Collector { return c.col }

// Controller exposes the switch control plane.
func (c *Cluster) Controller() *ctrlplane.Controller { return c.ctl }

// Directory exposes the coherence directory (tests, experiments).
func (c *Cluster) Directory() *coherence.Directory { return c.dir }

// Splitter exposes the Bounded Splitting controller (nil when disabled).
func (c *Cluster) Splitter() *ctrlplane.Splitter { return c.splitter }

// Blade returns compute blade i.
func (c *Cluster) Blade(i int) *computeblade.Blade { return c.cblades[i] }

// MemBlade returns memory blade m.
func (c *Cluster) MemBlade(m int) *memblade.Blade { return c.mblades[m] }

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Now returns current virtual time.
func (c *Cluster) Now() sim.Time { return c.eng.Now() }

// await drives the engine until done() has been called by some event.
func (c *Cluster) await(op func(done func())) {
	fired := false
	op(func() { fired = true })
	steps := 0
	for !fired {
		if !c.eng.Step() {
			panic("core: await ran out of events (protocol wedge)")
		}
		steps++
		if steps > 500_000_000 {
			panic("core: await exceeded step budget")
		}
	}
}

// InjectFailure installs a message-drop hook on the fabric (nil clears).
func (c *Cluster) InjectFailure(drop func(from, to fabric.NodeID) bool) {
	c.fab.DropFn = drop
}

// Failover switches to the backup control plane/data plane (§4.4).
// Directory entries are data-plane state and are not replicated: every
// live region is reset first (compute blades flush their data), then the
// backup ASIC is reconstructed from control-plane state and becomes
// active. This is the blocking wrapper around KillSwitch, the
// in-simulation failover event (elasticity.go).
func (c *Cluster) Failover() {
	c.KillSwitch()
}
