package core

// Cluster is the single-rack MIND deployment the paper evaluates: a Pod
// of exactly one Rack, presented as one object. Every Rack method
// promotes, so existing single-rack consumers (experiments, examples,
// the conformance suite) are unaffected by the pod-scale topology
// layer. A 1-rack pod is constructed in exactly the order the original
// single-rack cluster was, so its event schedule — and therefore every
// figure panel — is bit-identical.
type Cluster struct {
	*Rack
}

// NewCluster builds and wires a one-rack pod.
func NewCluster(cfg Config) (*Cluster, error) {
	pod, err := NewPod(PodConfig{Racks: []Config{cfg}})
	if err != nil {
		return nil, err
	}
	return &Cluster{pod.Rack(0)}, nil
}
