package core

import (
	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
)

type accessResultAlias = computeblade.AccessResult

// AccessGen produces a thread's memory access stream: each call returns
// the next access; ok=false ends the thread. Generators must be
// deterministic.
type AccessGen func() (va mem.VA, write bool, ok bool)

// Thread executes an access stream on one compute blade under the
// cluster's consistency model.
type Thread struct {
	c     *Rack
	proc  *Process
	tid   ctrlplane.TID
	blade int
	pdid  mem.PDID

	gen      AccessGen
	done     bool
	ops      uint64
	faults   uint64
	finished func()

	// PSO state (§6.1): pages with writes still propagating.
	pendingWrites map[mem.VA]int
	pendingTotal  int
	blockedOn     mem.VA // page whose drain unblocks us (0 = any slot)
	resumeOnDrain bool
	stash         stashed

	// Deferred blocking issue: step parks the faulting access here and
	// schedules threadIssue after the accrued local time, instead of
	// minting a closure per fault.
	issueVA    mem.VA
	issueWrite bool

	// Pre-bound completion callbacks, created once in Start: blockDone
	// resumes the main loop after a blocking fault; asyncDone drains a
	// PSO write (the page comes back in AccessResult.Page).
	blockDone func(accessResultAlias)
	asyncDone func(accessResultAlias)
}

// Pre-bound thread continuations: scheduling them allocates neither a
// closure nor (steady-state) an event.
func threadStep(x any)   { x.(*Thread).step() }
func threadFinish(x any) { x.(*Thread).finish() }
func threadIssue(x any) {
	t := x.(*Thread)
	t.issueBlocking(t.issueVA, t.issueWrite)
}

// stashed is an access deferred by a PSO stall.
type stashed struct {
	va    mem.VA
	write bool
	valid bool
}

// TID returns the thread id.
func (t *Thread) TID() ctrlplane.TID { return t.tid }

// BladeID returns the hosting compute blade.
func (t *Thread) BladeID() int { return t.blade }

// Ops returns completed accesses.
func (t *Thread) Ops() uint64 { return t.ops }

// Faults returns the number of remote faults the thread triggered.
func (t *Thread) Faults() uint64 { return t.faults }

// Done reports whether the access stream is exhausted.
func (t *Thread) Done() bool { return t.done }

// yieldQuantum bounds how much local (cache-hit) time a thread
// accumulates before re-entering the event loop, keeping virtual-time
// interleaving fine-grained.
const yieldQuantum = 5 * sim.Microsecond

// inlineBatch bounds hits processed per event dispatch.
const inlineBatch = 4096

// Start begins executing the generator; onFinish (optional) runs when the
// stream is exhausted.
func (t *Thread) Start(gen AccessGen, onFinish func()) {
	t.gen = gen
	t.finished = onFinish
	if t.c.cfg.Consistency != TSO {
		t.pendingWrites = make(map[mem.VA]int)
	}
	t.blockDone = func(accessResultAlias) {
		t.ops++
		t.c.eng.ScheduleArg(0, threadStep, t)
	}
	t.asyncDone = func(r accessResultAlias) { t.writeDrained(r.Page) }
	t.c.activeThreads++
	t.c.eng.ScheduleArg(0, threadStep, t)
}

func (t *Thread) finish() {
	if t.done {
		return
	}
	t.done = true
	t.c.activeThreads--
	if t.c.eng.Now() > t.c.lastFinish {
		t.c.lastFinish = t.c.eng.Now()
	}
	if t.finished != nil {
		t.finished()
	}
}

// step is the thread's main loop: cache hits are consumed inline
// (accumulating local virtual time), faults are issued after that local
// time elapses, and the thread resumes via completion callbacks.
func (t *Thread) step() {
	blade := t.c.cblades[t.blade]
	var local sim.Duration
	for i := 0; i < inlineBatch && local < yieldQuantum; i++ {
		va, write, ok := t.gen()
		if !ok {
			t.c.eng.ScheduleArg(local, threadFinish, t)
			return
		}
		local += t.c.cfg.ThinkTime
		pso := t.pendingWrites != nil
		page := mem.PageBase(va)

		// PSO read-after-write hazard: block until the page's pending
		// writes drain (§6.1).
		if pso && !write && t.pendingWrites[page] > 0 {
			t.blockedOn, t.resumeOnDrain = page, true
			t.stash = stashed{va: va, write: write, valid: true}
			return
		}

		if blade.WouldHit(va, write) {
			blade.Access(t.pdid, va, write, nil)
			t.ops++
			local += computeblade.HitLatency
			continue
		}

		// Miss. Under PSO, writes go asynchronous unless the store
		// buffer is full.
		if pso && write {
			if t.pendingTotal >= t.c.cfg.StoreBufferDepth {
				t.blockedOn, t.resumeOnDrain = 0, true
				t.stash = stashed{va: va, write: true, valid: true}
				return
			}
			t.issueAsyncWrite(va)
			continue
		}

		// Blocking fault, issued after accrued local time.
		if local > 0 {
			t.issueVA, t.issueWrite = va, write
			t.c.eng.ScheduleArg(local, threadIssue, t)
			return
		}
		t.issueBlocking(va, write)
		return
	}
	t.c.eng.ScheduleArg(local, threadStep, t)
}

// issueBlocking performs a fault the thread waits on (TSO accesses, PSO
// reads).
func (t *Thread) issueBlocking(va mem.VA, write bool) {
	blade := t.c.cblades[t.blade]
	hit := blade.Access(t.pdid, va, write, t.blockDone)
	if hit {
		// Raced with a concurrent fault that installed the page.
		t.ops++
		t.c.eng.ScheduleArg(0, threadStep, t)
		return
	}
	t.faults++
}

// issueAsyncWrite starts a PSO write fault the thread does not wait on.
func (t *Thread) issueAsyncWrite(va mem.VA) {
	blade := t.c.cblades[t.blade]
	page := mem.PageBase(va)
	hit := blade.Access(t.pdid, va, true, t.asyncDone)
	t.ops++
	if !hit {
		t.faults++
		t.pendingWrites[page]++
		t.pendingTotal++
	}
}

// writeDrained runs when an async PSO write completes.
func (t *Thread) writeDrained(page mem.VA) {
	if t.pendingWrites[page] > 0 {
		t.pendingWrites[page]--
		if t.pendingWrites[page] == 0 {
			delete(t.pendingWrites, page)
		}
	}
	if t.pendingTotal > 0 {
		t.pendingTotal--
	}
	if !t.resumeOnDrain {
		return
	}
	// Resume only once the blocking condition cleared: the specific page
	// drained, or (blockedOn == 0) any store-buffer slot freed.
	if t.blockedOn != 0 && t.pendingWrites[t.blockedOn] > 0 {
		return
	}
	t.resumeOnDrain = false
	t.blockedOn = 0
	st := t.stash
	t.stash = stashed{}
	if !st.valid {
		t.c.eng.ScheduleArg(0, threadStep, t)
		return
	}
	t.replay(st)
}

// replay re-issues a stalled access, then continues the main loop.
func (t *Thread) replay(st stashed) {
	blade := t.c.cblades[t.blade]
	if blade.WouldHit(st.va, st.write) {
		blade.Access(t.pdid, st.va, st.write, nil)
		t.ops++
		t.c.eng.ScheduleArg(computeblade.HitLatency, threadStep, t)
		return
	}
	if st.write && t.pendingWrites != nil {
		t.issueAsyncWrite(st.va)
		t.c.eng.ScheduleArg(0, threadStep, t)
		return
	}
	t.issueBlocking(st.va, st.write)
}

// RunThreads drives the engine until every started thread in the pod
// finishes, then stops the epoch loops and drains remaining events
// (in-flight writebacks etc.). It returns the virtual time at which the
// last thread finished.
func (c *Rack) RunThreads() sim.Time {
	return c.pod.RunThreads()
}
