package core

import (
	"testing"

	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// runDeterministic executes a fixed mixed workload and returns the finish
// time plus a counter fingerprint.
func runDeterministic(t *testing.T, seed uint64) (sim.Time, map[string]uint64) {
	t.Helper()
	cfg := DefaultConfig(4, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cfg.Seed = seed
	cfg.SplitterEpoch = 500 * sim.Microsecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<22, mem.PermReadWrite)
	for i := 0; i < 8; i++ {
		th, _ := p.SpawnThread(i % 4)
		rng := sim.NewRNG(seed+uint64(i), "det")
		n := 0
		th.Start(func() (mem.VA, bool, bool) {
			if n >= 4000 {
				return 0, false, false
			}
			n++
			return vma.Base + mem.VA(rng.Intn(768)*mem.PageSize), rng.Bool(0.3), true
		}, nil)
	}
	end := c.RunThreads()
	return end, c.Collector().Snapshot()
}

// TestSimulationDeterminism: identical seeds produce bit-identical runs —
// the property every experiment in this repo depends on.
func TestSimulationDeterminism(t *testing.T) {
	end1, snap1 := runDeterministic(t, 42)
	end2, snap2 := runDeterministic(t, 42)
	if end1 != end2 {
		t.Fatalf("runtimes differ: %d vs %d", end1, end2)
	}
	if len(snap1) != len(snap2) {
		t.Fatalf("counter sets differ: %d vs %d", len(snap1), len(snap2))
	}
	for k, v := range snap1 {
		if snap2[k] != v {
			t.Errorf("counter %s: %d vs %d", k, v, snap2[k])
		}
	}
	// A different seed must actually change the run.
	end3, _ := runDeterministic(t, 43)
	if end3 == end1 {
		t.Error("different seeds produced identical runtimes (suspicious)")
	}
}

// TestEpochLoopRunsDuringWorkload: the splitter's epoch loop must fire
// while threads run and stop afterwards.
func TestEpochLoopRunsDuringWorkload(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cfg.SplitterEpoch = 100 * sim.Microsecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<20, mem.PermReadWrite)
	th, _ := p.SpawnThread(0)
	n := 0
	th.Start(func() (mem.VA, bool, bool) {
		if n >= 2000 {
			return 0, false, false
		}
		n++
		return vma.Base + mem.VA((n%256)*mem.PageSize), n%3 == 0, true
	}, nil)
	c.RunThreads()
	if c.Splitter().Epochs() == 0 {
		t.Error("epoch loop never fired during the run")
	}
	// After RunThreads the loop is stopped: advancing time adds nothing.
	before := c.Splitter().Epochs()
	c.AdvanceTime(10 * sim.Millisecond)
	if c.Splitter().Epochs() != before {
		t.Error("epoch loop still running after RunThreads")
	}
}

// TestDisableSplitting: with splitting disabled there is no splitter and
// regions stay at the configured fixed granularity.
func TestDisableSplitting(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cfg.DisableSplitting = true
	cfg.InitialRegionSize = 64 << 10
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Splitter() != nil {
		t.Fatal("splitter exists despite DisableSplitting")
	}
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<20, mem.PermReadWrite)
	a, _ := p.SpawnThread(0)
	b, _ := p.SpawnThread(1)
	for i := 0; i < 16; i++ {
		if err := a.Store(vma.Base+mem.VA(i*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Load(vma.Base + mem.VA(i*mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	c.AdvanceTime(5 * sim.Millisecond)
	if got := c.Collector().Counter(stats.CtrSplits); got != 0 {
		t.Errorf("splits = %d with splitting disabled", got)
	}
	// Every region is exactly the configured size.
	for _, st := range c.Directory().EpochStats() {
		if st.Size != 64<<10 {
			t.Errorf("region size = %d, want fixed 64K", st.Size)
		}
	}
}

// TestCacheHitFastPath: a hot single-page loop should be served almost
// entirely from the local cache.
func TestCacheHitFastPath(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	th, _ := p.SpawnThread(0)
	n := 0
	th.Start(func() (mem.VA, bool, bool) {
		if n >= 10000 {
			return 0, false, false
		}
		n++
		return vma.Base, n%2 == 0, true
	}, nil)
	c.RunThreads()
	col := c.Collector()
	hitRate := float64(col.Counter(stats.CtrLocalHits)) / float64(col.Counter(stats.CtrAccesses))
	if hitRate < 0.999 {
		t.Errorf("hit rate = %v, want ~1 for a single hot page", hitRate)
	}
	if col.Counter(stats.CtrRemoteAccesses) > 2 {
		t.Errorf("remote accesses = %d, want <= 2 (read then write upgrade)",
			col.Counter(stats.CtrRemoteAccesses))
	}
}
