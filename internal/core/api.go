package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
)

// Process is a user process running over one MIND rack. Its threads may
// live on different compute blades of that rack while transparently
// sharing the global address space (§6.1).
type Process struct {
	c   *Rack
	pid mem.PDID
}

// Rack returns the rack hosting the process.
func (p *Process) Rack() *Rack { return p.c }

// Exec starts a process (exec intercept → switch control plane).
func (c *Rack) Exec(name string) *Process {
	var p *ctrlplane.Process
	c.await(func(done func()) {
		c.fab.CtrlCall(0, func() {
			p = c.ctl.Exec(name)
			done()
		})
	})
	return &Process{c: c, pid: p.PID}
}

// PID returns the process/protection-domain id.
func (p *Process) PID() mem.PDID { return p.pid }

// Mmap allocates a shared virtual memory area (§6.1). The syscall round
// trips through the switch control plane. In a multi-rack pod, a rack
// whose own memory blades cannot host the area borrows a spare blade
// from another rack (one inter-rack control round trip) and retries —
// the allocation ends up routed through both switches.
func (p *Process) Mmap(length uint64, perm mem.Perm) (mem.VMA, error) {
	var vma mem.VMA
	var err error
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			vma, err = p.c.ctl.Mmap(p.pid, length, perm)
			if err == nil || !errors.Is(err, ctrlplane.ErrNoMemory) || !p.c.pod.canBorrow() {
				done()
				return
			}
			need := mem.NextPow2(length)
			if need < mem.PageSize {
				need = mem.PageSize
			}
			p.c.pod.borrowAsync(p.c, need, func(ok bool) {
				if ok {
					vma, err = p.c.ctl.Mmap(p.pid, length, perm)
				}
				done()
			})
		})
	})
	return vma, err
}

// Munmap releases an area.
func (p *Process) Munmap(base mem.VA) error {
	var err error
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			err = p.c.ctl.Munmap(p.pid, base)
			done()
		})
	})
	return err
}

// MProtect changes permissions on a range.
func (p *Process) MProtect(base mem.VA, length uint64, perm mem.Perm) error {
	var err error
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			err = p.c.ctl.MProtect(p.pid, base, length, perm)
			done()
		})
	})
	return err
}

// CreateDomain mints a session protection domain (§4.2).
func (p *Process) CreateDomain() mem.PDID {
	var d mem.PDID
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			d = p.c.ctl.CreateDomain()
			done()
		})
	})
	return d
}

// GrantDomain grants a session domain rights over a range.
func (p *Process) GrantDomain(d mem.PDID, base mem.VA, length uint64, perm mem.Perm) error {
	var err error
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			err = p.c.ctl.GrantDomain(d, base, length, perm)
			done()
		})
	})
	return err
}

// Exit tears the process down.
func (p *Process) Exit() error {
	var err error
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			err = p.c.ctl.Exit(p.pid)
			done()
		})
	})
	return err
}

// SpawnThread places a thread of this process on the given compute blade
// (experiments pin threads per blade as §7.1 does).
func (p *Process) SpawnThread(blade int) (*Thread, error) {
	if blade < 0 || blade >= len(p.c.cblades) {
		return nil, fmt.Errorf("core: no compute blade %d", blade)
	}
	var tid ctrlplane.TID
	var err error
	p.c.await(func(done func()) {
		p.c.fab.CtrlCall(0, func() {
			tid, err = p.c.ctl.Processes().SpawnThreadOn(p.pid, blade)
			done()
		})
	})
	if err != nil {
		return nil, err
	}
	t := &Thread{
		c:     p.c,
		proc:  p,
		tid:   tid,
		blade: blade,
		pdid:  p.pid,
	}
	p.c.threads = append(p.c.threads, t)
	return t, nil
}

// --- Synchronous data-path operations (used by examples and the KVS) ---

// access performs one blocking access with the given intent, driving the
// simulation until it completes.
func (t *Thread) access(va mem.VA, write bool) error {
	var res error
	t.c.await(func(done func()) {
		hit := t.c.cblades[t.blade].Access(t.pdid, va, write, func(r accessResultAlias) {
			res = r.Err
			done()
		})
		if hit {
			done()
		}
	})
	return res
}

// Load reads one byte-addressed uint64 (little endian) from the global
// address space, faulting the page in if needed.
func (t *Thread) Load(va mem.VA) (uint64, error) {
	if err := t.access(va, false); err != nil {
		return 0, err
	}
	p, ok := t.c.cblades[t.blade].Cache().Peek(va)
	if !ok {
		return 0, fmt.Errorf("core: page vanished after load fault at %#x", uint64(va))
	}
	if p.Data == nil {
		return 0, nil // never-written memory reads as zero
	}
	off := int(va - mem.PageBase(va))
	if off+8 > mem.PageSize {
		return 0, fmt.Errorf("core: load crosses page boundary at %#x", uint64(va))
	}
	return binary.LittleEndian.Uint64(p.Data[off : off+8]), nil
}

// Store writes one uint64 (little endian), acquiring write ownership.
func (t *Thread) Store(va mem.VA, val uint64) error {
	if err := t.access(va, true); err != nil {
		return err
	}
	p, ok := t.c.cblades[t.blade].Cache().Peek(va)
	if !ok {
		return fmt.Errorf("core: page vanished after store fault at %#x", uint64(va))
	}
	if p.Data == nil {
		p.Data = make([]byte, mem.PageSize)
	}
	off := int(va - mem.PageBase(va))
	if off+8 > mem.PageSize {
		return fmt.Errorf("core: store crosses page boundary at %#x", uint64(va))
	}
	binary.LittleEndian.PutUint64(p.Data[off:off+8], val)
	p.Dirty = true
	return nil
}

// LoadBytes copies length bytes starting at va (must stay within one
// page).
func (t *Thread) LoadBytes(va mem.VA, length int) ([]byte, error) {
	if err := t.access(va, false); err != nil {
		return nil, err
	}
	off := int(va - mem.PageBase(va))
	if off+length > mem.PageSize {
		return nil, fmt.Errorf("core: LoadBytes crosses page boundary")
	}
	p, _ := t.c.cblades[t.blade].Cache().Peek(va)
	out := make([]byte, length)
	if p != nil && p.Data != nil {
		copy(out, p.Data[off:off+length])
	}
	return out, nil
}

// StoreBytes writes bytes starting at va (within one page).
func (t *Thread) StoreBytes(va mem.VA, data []byte) error {
	if err := t.access(va, true); err != nil {
		return err
	}
	off := int(va - mem.PageBase(va))
	if off+len(data) > mem.PageSize {
		return fmt.Errorf("core: StoreBytes crosses page boundary")
	}
	p, _ := t.c.cblades[t.blade].Cache().Peek(va)
	if p == nil {
		return fmt.Errorf("core: page vanished after store fault")
	}
	if p.Data == nil {
		p.Data = make([]byte, mem.PageSize)
	}
	copy(p.Data[off:off+len(data)], data)
	p.Dirty = true
	return nil
}

// Touch performs one timing-only access (no data materialization) —
// the primitive synthetic workloads use.
func (t *Thread) Touch(va mem.VA, write bool) error {
	return t.access(va, write)
}

// AdvanceTime idles the cluster for d of virtual time (lets epochs run).
// In a multi-rack pod the whole pod advances together — a lone engine
// cannot outrun its peers past the lookahead bound.
func (c *Rack) AdvanceTime(d sim.Duration) {
	if c.pod.multiRack {
		c.pod.AdvanceTime(d)
		return
	}
	c.eng.RunUntil(c.eng.Now().Add(d))
}
