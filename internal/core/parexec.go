package core

// Parallel pod execution: conservative lookahead over per-rack engines.
//
// The inter-rack interconnect has a fixed propagation delay P: nothing a
// rack does can affect another rack in less than P of virtual time. The
// executor exploits exactly that bound. All rack engines advance in
// lockstep windows [vnow, vnow+W) with W <= P; within a window each
// engine runs independently (optionally on a worker pool), because any
// cross-rack message sent inside the window arrives no earlier than its
// uplink completion plus P — at or beyond the window's end. Sends
// buffer in the interconnect's per-source outboxes and the barrier
// between windows injects them into the destination engines
// (fabric.Interconnect.FlushBoundary), merged in deterministic arrival
// order.
//
// RunWindow dispatches strictly below the window end and then parks the
// engine's clock ON the boundary, so between windows every engine sits
// at exactly vnow. That makes the lookahead argument airtight: any
// event scheduled from barrier context lands at >= vnow, and any send
// booked during the next window departs at >= vnow, arriving at
// >= vnow + P >= the next boundary.
//
// The barrier is also the pod's exclusive section. Operations that
// inherently span racks — blade borrow/return (two allocators), idle
// lease returns, scheduled failure injection (podfail.go), the
// experiment sampler — run only here, with every engine parked. Rack events merely flag or enqueue them. Everything
// else a rack event touches is rack-local by construction: per-rack
// engine, collector, fabric, blades, pools. A borrowed blade's page
// store belongs to the borrowing rack's shard for the duration of the
// lease (the owner retired it from its own tables), which is why data
// can land in it from borrower events.
//
// Determinism: none of this depends on the worker count. Window
// contents are fixed by the event schedule, boundary injection order is
// fixed by arrival time (ties by source rack, then send order), and
// barrier work runs in rack-index order. Serial, 1-worker and N-worker
// execution produce bit-identical simulations; workers only change
// wall-clock time. parexec_test.go enforces this with engine dispatch
// hashes.

import "mind/internal/sim"

// borrowReq is one queued blade-borrow negotiation: the allocator
// transfer happens at the barrier preceding the window that contains
// due, and done(ok) fires as a borrower event at due.
type borrowReq struct {
	need uint64
	due  sim.Time
	done func(ok bool)
}

// podExec drives a multi-rack pod in lockstep windows.
type podExec struct {
	p *Pod
	// window is the lockstep window width, clamped to the interconnect
	// propagation delay (the conservative lookahead bound).
	window sim.Duration
	// workers is the configured worker-pool width for parallel drives.
	workers int
	// vnow is the pod-wide window cursor: every rack engine sits
	// exactly here between drives.
	vnow sim.Time

	// Barrier-driven sampler (Pod.SampleEvery).
	sampleEvery sim.Duration
	sampleFn    func(sim.Time)
	nextSample  sim.Time
}

func newPodExec(p *Pod, window sim.Duration, workers int) *podExec {
	prop := p.ic.Config().Propagation
	if window <= 0 || window > prop {
		window = prop
	}
	if workers < 1 {
		workers = 1
	}
	return &podExec{p: p, window: window, workers: workers}
}

// drive advances the pod window by window until stop() reports done,
// evaluated at barriers. A nonzero target caps the final window (used
// by AdvanceTime to land exactly on its deadline); a zero target means
// "until stop", and running dry beforehand is a protocol wedge. When
// parallel is set (and the pod has both workers and racks to use),
// windows execute on a worker pool; the pool lives for this drive only,
// so an idle pod holds no goroutines.
func (x *podExec) drive(parallel bool, target sim.Time, stop func() bool) {
	var wp *wpool
	if parallel && x.workers > 1 && len(x.p.racks) > 1 {
		wp = newWpool(x.p.racks, x.workers)
		defer wp.close()
	}
	startExec := x.p.ExecutedEvents()
	for !stop() {
		if target == 0 && x.idle() {
			panic("core: pod drive ran out of events (protocol wedge)")
		}
		end := x.vnow.Add(x.window)
		if target != 0 && end > target {
			end = target
		}
		if wp != nil {
			wp.run(end)
		} else {
			for _, r := range x.p.racks {
				r.eng.RunWindow(end)
			}
		}
		x.vnow = end
		x.p.ic.FlushBoundary()
		x.barrier(end)
		if x.p.ExecutedEvents()-startExec > 2_000_000_000 {
			panic("core: pod drive exceeded event budget")
		}
	}
}

// idle reports whether the pod can make no further progress: every
// engine empty and no queued borrow negotiations. Outboxes are always
// empty here (the previous barrier flushed them).
func (x *podExec) idle() bool {
	for _, r := range x.p.racks {
		if r.eng.Pending() > 0 || len(r.pendingBorrows) > 0 || len(r.pendingFaults) > 0 {
			return false
		}
	}
	return true
}

// barrier is the exclusive section between windows: every rack engine
// is parked on end. It performs the flagged idle-blade returns, the due
// borrow negotiations, and the sampler — in rack-index order, so the
// outcome is independent of how the windows were scheduled.
func (x *podExec) barrier(end sim.Time) {
	// Failure injection precedes the barrier's lease traffic: a fault
	// due inside the next window [end, end+window) becomes ordinary
	// rack events at its exact injection time (podfail.go), before any
	// blade changes hands at this boundary.
	x.injectDueFaults(end.Add(x.window))
	for _, r := range x.p.racks {
		if r.wantReturns {
			r.wantReturns = false
			r.returnIdleBorrowedBlades()
		}
	}
	// A borrow whose due time falls inside the next window [end,
	// end+window) must resolve now; later ones keep waiting. done fires
	// as a normal borrower event at the due time, so threads observe
	// the negotiation RTT exactly.
	horizon := end.Add(x.window)
	for _, r := range x.p.racks {
		if len(r.pendingBorrows) == 0 {
			continue
		}
		rest := r.pendingBorrows[:0]
		for _, req := range r.pendingBorrows {
			if req.due >= horizon {
				rest = append(rest, req)
				continue
			}
			ok := x.p.borrow(r, req.need)
			done := req.done
			r.eng.At(req.due, func() { done(ok) })
		}
		r.pendingBorrows = rest
	}
	if x.sampleFn != nil {
		for x.nextSample <= x.vnow {
			x.sampleFn(x.nextSample)
			x.nextSample = x.nextSample.Add(x.sampleEvery)
		}
	}
}

// wpool executes one window across the racks on a fixed set of
// goroutines. Worker w owns racks w, w+n, w+2n, … for its lifetime, so
// a rack's engine is only ever touched by one goroutine per drive; the
// start/done channel operations order each window's rack mutations
// before the barrier's reads.
type wpool struct {
	racks []*Rack
	n     int
	start []chan sim.Time
	done  chan struct{}
}

func newWpool(racks []*Rack, workers int) *wpool {
	if workers > len(racks) {
		workers = len(racks)
	}
	wp := &wpool{
		racks: racks,
		n:     workers,
		start: make([]chan sim.Time, workers),
		done:  make(chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		ch := make(chan sim.Time, 1)
		wp.start[w] = ch
		go func(w int, ch chan sim.Time) {
			for end := range ch {
				for i := w; i < len(wp.racks); i += wp.n {
					wp.racks[i].eng.RunWindow(end)
				}
				wp.done <- struct{}{}
			}
		}(w, ch)
	}
	return wp
}

func (wp *wpool) run(end sim.Time) {
	for _, ch := range wp.start {
		ch <- end
	}
	for range wp.start {
		<-wp.done
	}
}

func (wp *wpool) close() {
	for _, ch := range wp.start {
		close(ch)
	}
}
