package core

// Parallel pod execution: conservative lookahead over per-rack engines.
//
// The inter-rack interconnect has a fixed propagation delay P: nothing a
// rack does can affect another rack in less than P of virtual time. The
// executor exploits exactly that bound. All rack engines advance in
// lockstep windows [vnow, vnow+W) with W <= P; within a window each
// engine runs independently (optionally on a worker pool), because any
// cross-rack message sent inside the window arrives no earlier than its
// uplink completion plus P — at or beyond the window's end. Sends
// buffer in the interconnect's per-source outboxes and the barrier
// between windows injects them into the destination engines
// (fabric.Interconnect.FlushBoundary), merged in deterministic arrival
// order.
//
// RunWindow dispatches strictly below the window end and then parks the
// engine's clock ON the boundary, so between windows every engine sits
// at exactly vnow. That makes the lookahead argument airtight: any
// event scheduled from barrier context lands at >= vnow, and any send
// booked during the next window departs at >= vnow, arriving at
// >= vnow + P >= the next boundary.
//
// The barrier is also the pod's exclusive section. Operations that
// inherently span racks — blade borrow/return (two allocators), idle
// lease returns, scheduled failure injection (podfail.go), the
// experiment sampler — run only here, with every engine parked. Rack events merely flag or enqueue them. Everything
// else a rack event touches is rack-local by construction: per-rack
// engine, collector, fabric, blades, pools. A borrowed blade's page
// store belongs to the borrowing rack's shard for the duration of the
// lease (the owner retired it from its own tables), which is why data
// can land in it from borrower events.
//
// Determinism: none of this depends on the worker count. Window
// contents are fixed by the event schedule, boundary injection order is
// fixed by arrival time (ties by source rack, then send order), and
// barrier work runs in rack-index order. Serial, 1-worker and N-worker
// execution produce bit-identical simulations; workers only change
// wall-clock time. parexec_test.go enforces this with engine dispatch
// hashes.

import "mind/internal/sim"

// borrowReq is one queued blade-borrow negotiation: the allocator
// transfer happens at the barrier preceding the window that contains
// due, and done(ok) fires as a borrower event at due.
type borrowReq struct {
	need uint64
	due  sim.Time
	done func(ok bool)
}

// podExec drives a multi-rack pod in lockstep windows.
type podExec struct {
	p *Pod
	// window is the lockstep window width, clamped to the interconnect
	// propagation delay (the conservative lookahead bound).
	window sim.Duration
	// workers is the configured worker-pool width for parallel drives.
	workers int
	// vnow is the pod-wide window cursor: every rack engine sits
	// exactly here between drives.
	vnow sim.Time
	// dense disables the sparse-horizon jump: every 1-window barrier is
	// visited even when provably a no-op. The equivalence suites sweep
	// it to pin sparse execution bit-identical to the dense baseline.
	dense bool

	// wp is the persistent worker pool of parallel drives. It is
	// created lazily on the first parallel drive and survives across
	// drives (RunThreads drives twice, AdvanceTime sampling loops drive
	// per tick) so window handoff reuses parked goroutines instead of
	// spawning a pool per drive; any drive that ends with the pod fully
	// drained releases it, so an idle pod holds no goroutines.
	wp *wpool

	// Barrier-driven sampler (Pod.SampleEvery).
	sampleEvery sim.Duration
	sampleFn    func(sim.Time)
	nextSample  sim.Time

	// Executor observability, read via Pod.WindowStats: windows actually
	// swept, grid windows skipped by the sparse-horizon jump, and
	// barriers whose cross-rack flush was elided (no buffered sends).
	windowsExecuted uint64
	windowsSkipped  uint64
	flushesElided   uint64
}

func newPodExec(p *Pod, window sim.Duration, workers int, dense bool) *podExec {
	prop := p.ic.Config().Propagation
	if window <= 0 || window > prop {
		window = prop
	}
	if workers < 1 {
		workers = 1
	}
	return &podExec{p: p, window: window, workers: workers, dense: dense}
}

// drive advances the pod window by window until stop() reports done,
// evaluated at barriers. A nonzero target caps the final window (used
// by AdvanceTime to land exactly on its deadline); a zero target means
// "until stop", and running dry beforehand is a protocol wedge. When
// parallel is set (and the pod has both workers and racks to use),
// windows execute on the persistent worker pool.
//
// In sparse mode (the default) each iteration jumps the cursor directly
// to the window containing the pod's safe horizon (nextBarrier),
// collapsing every provably-empty grid window in between into the
// single barrier at the jump's end. stop() need not be re-evaluated at
// the skipped boundaries: every stop condition used by callers
// (targets, thread counts, serve completion, await flags, idleness) can
// only change through dispatched events or barrier work, and the
// skipped region has neither.
func (x *podExec) drive(parallel bool, target sim.Time, stop func() bool) {
	var wp *wpool
	if parallel && x.workers > 1 && len(x.p.racks) > 1 {
		if x.wp == nil {
			x.wp = newWpool(x.p.racks, x.workers)
		}
		wp = x.wp
	}
	startExec := x.p.ExecutedEvents()
	for !stop() {
		if target == 0 && x.idle() {
			panic("core: pod drive ran out of events (protocol wedge)")
		}
		end := x.nextBarrier(target)
		if wp != nil {
			wp.run(end)
		} else {
			for _, r := range x.p.racks {
				r.eng.RunWindow(end)
			}
		}
		x.vnow = end
		x.windowsExecuted++
		// Elide the cross-rack merge entirely on a quiet boundary: the
		// pending counter is exact here (workers parked), so skipping
		// FlushBoundary when it is zero delivers the same nothing.
		if x.p.ic.PendingBoundary() > 0 {
			x.p.ic.FlushBoundary()
		} else {
			x.flushesElided++
		}
		x.barrier(end)
		if x.p.ExecutedEvents()-startExec > 2_000_000_000 {
			panic("core: pod drive exceeded event budget")
		}
	}
	// Release the pool once the pod has fully drained: parked workers
	// are cheap between drives of a live run, but an idle pod (between
	// tests, or retired) should hold no goroutines.
	if x.wp != nil && x.idle() {
		x.wp.close()
		x.wp = nil
	}
}

// nextBarrier returns the end of the next window to sweep. Dense mode
// always advances one window (capped at target). Sparse mode jumps
// ahead k windows when the k-1 intermediate grid barriers are provably
// no-ops, which is exactly when every obligation lies at or beyond the
// jump's end:
//
//   - earliest pending event: with every engine parked on vnow and the
//     outboxes empty (the previous barrier flushed), no rack can
//     dispatch before tE = min PeekTime across engines, and no
//     cross-rack send can exist before a dispatch. The jump lands on
//     the grid window containing tE, so skipped windows dispatch
//     nothing, flush nothing, and consume no sequence numbers — the
//     (time, seq) dispatch order is bit-identical to grinding densely.
//     Sends booked inside the final window still arrive at or beyond
//     its boundary (send time >= end-W, propagation >= W).
//   - sampler tick: the dense run fires sampleFn at the first barrier
//     >= nextSample; the jump stops there.
//   - pending fault injection / borrow resolution: each resolves at the
//     first barrier end with at < end+W (podfail.go / barrier); the
//     jump stops at that barrier so injection happens at the same grid
//     point, at the same vnow, as in dense mode.
//   - run target: the final window is capped exactly as dense capping
//     would, so AdvanceTime lands on its deadline and the grid
//     re-anchors there identically.
//
// Serve-termination probes and thread-completion checks need no clamp:
// they are stop() conditions evaluated at barriers, and nothing in a
// skipped region can change them (see drive).
func (x *podExec) nextBarrier(target sim.Time) sim.Time {
	end := x.vnow.Add(x.window)
	if x.dense {
		if target != 0 && end > target {
			end = target
		}
		return end
	}
	k := x.safeJump(target)
	if k > 1 {
		end = x.vnow.Add(x.window * sim.Duration(k))
		x.windowsSkipped += uint64(k - 1)
	}
	if target != 0 && end > target {
		end = target
	}
	return end
}

// safeJump returns how many grid windows the cursor may advance in one
// sweep: the largest k such that no obligation (event dispatch, sampler
// tick, fault injection, borrow resolution) is due at any of the k-1
// intermediate barriers. Returns at least 1. Barrier context only.
func (x *podExec) safeJump(target sim.Time) int64 {
	w := int64(x.window)
	vnow := int64(x.vnow)
	const unbounded = int64(1) << 62
	k := unbounded

	// Earliest pending event across the rack engines. kE is the minimal
	// k with vnow+kW > tE, i.e. the jump's final window contains tE. One
	// pass, exiting on the first rack that forces the adjacent window —
	// an event inside it, or a flagged lease return (wantReturns can
	// only be set by a rack event and is consumed by the barrier
	// immediately after, so it is clear here; if it ever were set, the
	// next barrier must run it). In busy phases some rack nearly always
	// has imminent work, so the sparse check typically costs one peek
	// instead of a full sweep plus the obligation clamps below.
	for _, r := range x.p.racks {
		if r.wantReturns {
			return 1
		}
		t, ok := r.eng.PeekTime()
		if !ok {
			continue
		}
		kE := (int64(t)-vnow)/w + 1
		if kE <= 1 {
			return 1
		}
		if kE < k {
			k = kE
		}
	}
	// Sampler tick: minimal k with vnow+kW >= nextSample.
	if x.sampleFn != nil {
		if d := int64(x.nextSample) - vnow; d > 0 {
			if kS := (d + w - 1) / w; kS < k {
				k = kS
			}
		} else {
			k = 1
		}
	}
	// Fault injections (podfail.go) and borrow resolutions: each is
	// performed by the first barrier end with obligation time < end+W,
	// i.e. minimal k with vnow+kW > at-W.
	if kF := x.faultJumpBound(); kF < k {
		k = kF
	}
	for _, r := range x.p.racks {
		for _, req := range r.pendingBorrows {
			if kB := (int64(req.due)-w-vnow)/w + 1; kB < k {
				k = kB
			}
		}
	}
	if target != 0 {
		// Dense mode reaches target in ceil((target-vnow)/W) windows;
		// never jump past that (nextBarrier caps the final window).
		if kT := (int64(target) - vnow + w - 1) / w; kT < k {
			k = kT
		}
	}
	if k < 1 || k == unbounded {
		// Clamped below a window (an overdue obligation — cannot happen
		// after a correct barrier, but never jump past one), or nothing
		// pending at all with no target (the idle/wedge check in drive
		// owns that case): advance exactly one window.
		return 1
	}
	return k
}

// idle reports whether the pod can make no further progress: every
// engine empty and no queued borrow negotiations. Outboxes are always
// empty here (the previous barrier flushed them).
func (x *podExec) idle() bool {
	for _, r := range x.p.racks {
		if r.eng.Pending() > 0 || len(r.pendingBorrows) > 0 || len(r.pendingFaults) > 0 {
			return false
		}
	}
	return true
}

// barrier is the exclusive section between windows: every rack engine
// is parked on end. It performs the flagged idle-blade returns, the due
// borrow negotiations, and the sampler — in rack-index order, so the
// outcome is independent of how the windows were scheduled.
func (x *podExec) barrier(end sim.Time) {
	// Failure injection precedes the barrier's lease traffic: a fault
	// due inside the next window [end, end+window) becomes ordinary
	// rack events at its exact injection time (podfail.go), before any
	// blade changes hands at this boundary.
	x.injectDueFaults(end.Add(x.window))
	for _, r := range x.p.racks {
		if r.wantReturns {
			r.wantReturns = false
			r.returnIdleBorrowedBlades()
		}
	}
	// A borrow whose due time falls inside the next window [end,
	// end+window) must resolve now; later ones keep waiting. done fires
	// as a normal borrower event at the due time, so threads observe
	// the negotiation RTT exactly.
	horizon := end.Add(x.window)
	for _, r := range x.p.racks {
		if len(r.pendingBorrows) == 0 {
			continue
		}
		rest := r.pendingBorrows[:0]
		for _, req := range r.pendingBorrows {
			if req.due >= horizon {
				rest = append(rest, req)
				continue
			}
			ok := x.p.borrow(r, req.need)
			done := req.done
			r.eng.At(req.due, func() { done(ok) })
		}
		r.pendingBorrows = rest
	}
	if x.sampleFn != nil {
		for x.nextSample <= x.vnow {
			x.sampleFn(x.nextSample)
			x.nextSample = x.nextSample.Add(x.sampleEvery)
		}
	}
}

// wpool executes one window across the racks on a fixed set of
// goroutines. Worker w owns racks w, w+n, w+2n, … for its lifetime, so
// a rack's engine is only ever touched by one goroutine per drive; the
// start/done channel operations order each window's rack mutations
// before the barrier's reads.
type wpool struct {
	racks []*Rack
	n     int
	start []chan sim.Time
	done  chan struct{}
}

func newWpool(racks []*Rack, workers int) *wpool {
	if workers > len(racks) {
		workers = len(racks)
	}
	wp := &wpool{
		racks: racks,
		n:     workers,
		start: make([]chan sim.Time, workers),
		done:  make(chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		ch := make(chan sim.Time, 1)
		wp.start[w] = ch
		go func(w int, ch chan sim.Time) {
			for end := range ch {
				for i := w; i < len(wp.racks); i += wp.n {
					wp.racks[i].eng.RunWindow(end)
				}
				wp.done <- struct{}{}
			}
		}(w, ch)
	}
	return wp
}

func (wp *wpool) run(end sim.Time) {
	for _, ch := range wp.start {
		ch <- end
	}
	for range wp.start {
		<-wp.done
	}
}

func (wp *wpool) close() {
	for _, ch := range wp.start {
		close(ch)
	}
}
