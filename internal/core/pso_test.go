package core

import (
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// psoCluster builds a 2-blade PSO rack for consistency-model tests.
func psoCluster(t *testing.T, model Consistency, storeBuffer int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 2048
	cfg.Consistency = model
	if storeBuffer > 0 {
		cfg.StoreBufferDepth = storeBuffer
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPSOWritesDoNotBlockThread: under PSO a thread issuing write faults
// to distinct pages keeps running; under TSO it stalls per write.
func TestPSOWritesDoNotBlockThread(t *testing.T) {
	run := func(model Consistency) sim.Time {
		c := psoCluster(t, model, 16)
		p := c.Exec("app")
		vma, _ := p.Mmap(1<<22, mem.PermReadWrite)
		th, _ := p.SpawnThread(0)
		n := 0
		th.Start(func() (mem.VA, bool, bool) {
			if n >= 512 {
				return 0, false, false
			}
			n++
			// All distinct pages: every access is a write fault.
			return vma.Base + mem.VA(n*mem.PageSize), true, true
		}, nil)
		return c.RunThreads()
	}
	tso := run(TSO)
	pso := run(PSO)
	// PSO pipelines the faults; 512 sequential 9us faults vs pipelined.
	if pso >= tso/2 {
		t.Errorf("PSO runtime %v should be far below TSO %v for pure write faults", pso, tso)
	}
}

// TestPSOStoreBufferBounds: a tiny store buffer forces stalls, pushing
// PSO back toward TSO.
func TestPSOStoreBufferBounds(t *testing.T) {
	run := func(depth int) sim.Time {
		c := psoCluster(t, PSO, depth)
		p := c.Exec("app")
		vma, _ := p.Mmap(1<<22, mem.PermReadWrite)
		th, _ := p.SpawnThread(0)
		n := 0
		th.Start(func() (mem.VA, bool, bool) {
			if n >= 256 {
				return 0, false, false
			}
			n++
			return vma.Base + mem.VA(n*mem.PageSize), true, true
		}, nil)
		return c.RunThreads()
	}
	deep := run(32)
	shallow := run(1)
	if shallow <= deep {
		t.Errorf("store buffer depth 1 (%v) should be slower than depth 32 (%v)", shallow, deep)
	}
}

// TestPSOReadAfterWriteBlocks: a read to a page with a pending write must
// wait for the drain (§6.1: PSO "blocks if there is a subsequent read to
// the same region").
func TestPSOReadAfterWriteBlocks(t *testing.T) {
	c := psoCluster(t, PSO, 16)
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<20, mem.PermReadWrite)
	th, _ := p.SpawnThread(0)
	seq := []struct {
		off   mem.VA
		write bool
	}{
		{0, true},  // async write fault
		{0, false}, // read same page: must block for the drain
		{mem.PageSize, true},
		{2 * mem.PageSize, false},
	}
	i := 0
	var order []int
	th.Start(func() (mem.VA, bool, bool) {
		if i >= len(seq) {
			return 0, false, false
		}
		s := seq[i]
		order = append(order, i)
		i++
		return vma.Base + s.off, s.write, true
	}, nil)
	c.RunThreads()
	if th.Ops() != uint64(len(seq)) {
		t.Fatalf("ops = %d, want %d", th.Ops(), len(seq))
	}
	// The write must have drained before the read completed, so the page
	// is cached writable and both ops counted.
	if !c.Blade(0).WouldHit(vma.Base, true) {
		t.Error("write never drained")
	}
}

// TestSequentialInvalidationCorrectness: the unicast ablation must
// preserve protocol correctness (values still coherent), only slower.
func TestSequentialInvalidationCorrectness(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 1024
	cfg.SequentialInvalidation = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Exec("app")
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	var threads []*Thread
	for i := 0; i < 4; i++ {
		th, _ := p.SpawnThread(i)
		threads = append(threads, th)
	}
	// Everyone reads, then one writes, then everyone re-reads.
	for _, th := range threads {
		if _, err := th.Load(vma.Base); err != nil {
			t.Fatal(err)
		}
	}
	if err := threads[2].Store(vma.Base, 321); err != nil {
		t.Fatal(err)
	}
	for i, th := range threads {
		v, err := th.Load(vma.Base)
		if err != nil {
			t.Fatal(err)
		}
		if v != 321 {
			t.Errorf("blade %d read %d, want 321", i, v)
		}
	}
	if c.Collector().Counter(stats.CtrInvalidations) == 0 {
		t.Error("no invalidations recorded")
	}
}

// TestMigrationEndToEnd: data written before a migration must be readable
// after it, with the outlier entry routing to the new blade (§4.1).
func TestMigrationEndToEnd(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	p := c.Exec("app")
	vma, _ := p.Mmap(64<<10, mem.PermReadWrite)
	th, _ := p.SpawnThread(0)
	if err := th.Store(vma.Base+8, 777); err != nil {
		t.Fatal(err)
	}
	_, home, err := c.Controller().Allocator().Lookup(vma.Base)
	if err != nil {
		t.Fatal(err)
	}
	dst := ctrlplane.BladeID(1 - int(home))

	// Flush the dirty page to its home blade, copy the backing pages to
	// the destination, then switch translation (the page-migration
	// sequence an OS would run).
	c.Failover() // reset = flush everything (reuse the reset path)
	reserved, _ := c.Controller().Allocator().Reserved(vma.Base)
	for off := uint64(0); off < reserved; off += mem.PageSize {
		va := vma.Base + mem.VA(off)
		if data := c.MemBlade(int(home)).ReadPage(va); data != nil {
			c.MemBlade(int(dst)).WritePage(va, data)
		}
	}
	if err := c.Controller().Allocator().Migrate(vma.Base, dst); err != nil {
		t.Fatal(err)
	}

	th2, _ := p.SpawnThread(1)
	v, err := th2.Load(vma.Base + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Errorf("post-migration read = %d, want 777", v)
	}
	// And the fetch really came from the destination blade.
	reads, _ := c.MemBlade(int(dst)).Ops()
	if reads == 0 {
		t.Error("destination blade never served a read")
	}
}

// TestThreadAccessors covers the small Thread accessors.
func TestThreadAccessors(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	p := c.Exec("app")
	th, _ := p.SpawnThread(0)
	if th.BladeID() != 0 {
		t.Error("blade id")
	}
	if th.Done() {
		t.Error("not started, not done")
	}
	vma, _ := p.Mmap(1<<16, mem.PermReadWrite)
	n := 0
	th.Start(func() (mem.VA, bool, bool) {
		if n >= 10 {
			return 0, false, false
		}
		n++
		return vma.Base, false, true
	}, nil)
	c.RunThreads()
	if !th.Done() || th.Ops() != 10 || th.Faults() == 0 {
		t.Errorf("ops=%d faults=%d done=%v", th.Ops(), th.Faults(), th.Done())
	}
	if th.TID() < 0 {
		t.Error("tid")
	}
}
