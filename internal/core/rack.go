package core

import (
	"fmt"

	"mind/internal/coherence"
	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/fabric"
	"mind/internal/mem"
	"mind/internal/memblade"
	"mind/internal/sim"
	"mind/internal/stats"
)

// memNodeBase offsets memory-blade fabric node IDs away from compute
// blades'.
const memNodeBase fabric.NodeID = 1000

// Rack is one simulated MIND rack (Figure 2): a programmable ToR switch
// holding the TCAM translations and the coherence directory for its
// blades, the rack-local fabric, and the compute/memory blades behind
// it. Racks are always members of a Pod; a 1-rack Pod is the classic
// single-rack MIND deployment (Cluster is its facade).
type Rack struct {
	pod *Pod
	idx int
	cfg Config

	// eng and col are this rack's engine and collector. In a 1-rack pod
	// they alias the pod's (the classic single-threaded simulation); in
	// a multi-rack pod every rack owns both, so windows can execute
	// concurrently without sharing mutable state (parexec.go).
	eng *sim.Engine
	col *stats.Collector

	fab *fabric.Fabric

	ctl      *ctrlplane.Controller
	dir      *coherence.Directory
	splitter *ctrlplane.Splitter

	cblades []*computeblade.Blade
	mblades []*memblade.Blade

	// mbOwner maps a registered memory blade id to the pod rack index
	// that physically hosts it; mbOwnNode is the blade's fabric NodeID
	// in the owner's fabric. Local blades own themselves. remoteHeat
	// counts the data-path messages (fault fetch requests and page
	// writebacks) routed to each remote blade in the current promotion
	// epoch — the signal the hot-page promotion policy consumes.
	mbOwner    []int
	mbOwnNode  []fabric.NodeID
	remoteHeat []uint64
	borrowed   int // registered blades currently homed in other racks

	// promoting serializes vma promotions: at most one freeze→copy→
	// TCAM-rewrite chain runs per rack at a time.
	promoting bool
	// wantReturns marks that this rack's promotion epoch found idle
	// borrowed blades; the next window barrier performs the returns
	// (cross-rack allocator mutations never run from rack events).
	wantReturns bool
	// pendingBorrows queues this rack's outstanding blade-borrow
	// negotiations for the barrier (parexec.go). In a 1-rack pod
	// borrowing is rejected up front, so the queue stays empty.
	pendingBorrows []borrowReq
	// pendingFaults queues this rack's scheduled failure injections
	// (podfail.go); the barrier converts due ones into rack events in
	// rack-index order, so the injection schedule is independent of the
	// worker count. 1-rack pods schedule directly and keep this empty.
	pendingFaults []*podFault
	// recovering counts failure recoveries in flight on this rack (blade
	// kill re-homing, switch failover). While it is nonzero the rack is
	// in recovery blackout; the serving layer's brownout admission sheds
	// load against it. Written only from rack event context.
	recovering int

	threads []*Thread
	// activeThreads counts started-but-unfinished threads on this rack;
	// lastFinish is the virtual time the most recent one finished. Both
	// are written only from rack event context.
	activeThreads int
	lastFinish    sim.Time

	epochTick *sim.Event
	promoTick *sim.Event
	// promoEpoch is the promotion tick period; the tick event is rearmed
	// in place each epoch (sim.Rearm), so the loop never allocates.
	promoEpoch sim.Duration

	// Free lists for the pooled fabric-glue jobs (accessed only from
	// this rack's execution context).
	reqFree   sim.Pool[reqJob]
	wbFree    sim.Pool[wbJob]
	crossFree sim.Pool[crossJob]

	hLostWrites    stats.Handle
	hBladeEvents   stats.Handle
	hMigratedPages stats.Handle
	hKills         stats.Handle
	hRecoveries    stats.Handle
	// Registered only for multi-rack pods (their code paths are
	// unreachable in a 1-rack pod, whose counter set must stay exactly
	// the classic single-rack one).
	hCrossMsgs     stats.Handle
	hPromotedVMAs  stats.Handle
	hPromotedPages stats.Handle
}

// reqJob carries one page-fault request blade -> switch; jobs are pooled
// and recycled as soon as the request is handed to the directory.
type reqJob struct {
	c     *Rack
	blade int
	pdid  mem.PDID
	va    mem.VA
	want  mem.Perm
	done  func(coherence.Completion)
}

// reqAtSwitch runs when the fault request finishes ingress processing.
func reqAtSwitch(x any) {
	j := x.(*reqJob)
	c, blade, pdid, va, want, done := j.c, j.blade, j.pdid, j.va, j.want, j.done
	j.done = nil
	c.reqFree.Put(j)
	c.dir.RequestPage(blade, pdid, va, want, done)
}

// wbJob carries one page writeback blade -> switch -> memory blade. The
// job owns its page bytes: writeback snapshots the caller's buffer into
// buf at enqueue (the compute blade recycles its buffers immediately,
// and an invalidation downgrade keeps the page cached while its flush
// is still in flight), and buf stays with the pooled job forever.
type wbJob struct {
	c    *Rack
	va   mem.VA
	data []byte
	buf  []byte
	home ctrlplane.BladeID
	done func()
}

// wbAtSwitch runs when the writeback reaches the switch: translate and
// forward to the home memory blade (or account a lost write).
func wbAtSwitch(x any) {
	j := x.(*wbJob)
	c := j.c
	home, err := c.ctl.Allocator().Translate(j.va)
	if err != nil {
		c.freeWB(j, true) // unmapped (racing munmap); drop
		return
	}
	if c.mblades[int(home)].Dead() {
		// One-sided write to a failed blade: the NIC's reliable
		// connection errors out after the send attempt. The data is
		// lost, but the completion (with error) still fires — flush
		// barriers must not wedge on a dead target (§4.4).
		c.col.IncH(c.hLostWrites, 1)
		done := j.done
		c.freeWB(j, false)
		c.eng.ScheduleArg(c.fab.OneWayBase(fabric.PageBytes), sim.CallFunc, done)
		return
	}
	j.home = home
	if c.remoteBlade(home) {
		// Remote writeback: the page rides to the borrowed blade and a
		// small ack rides back (the NIC's reliable-connection
		// completion). The page lands in the blade's store when the ack
		// reaches the borrower — the blade's page map belongs to the
		// borrower's shard while the lease is live, so only borrower
		// events may touch it; the in-flight window is invisible because
		// every read of the blade also comes from this rack.
		c.memRound(home, fabric.PageBytes, fabric.CtrlMsgBytes, 0, wbLanded, j)
		return
	}
	c.fab.SendFromSwitchArg(c.mbOwnNode[int(home)], fabric.PageBytes, wbLanded, j)
}

// wbLanded persists the page and completes. For a local blade it runs at
// the blade, at delivery; for a borrowed blade it runs at the borrower's
// switch when the write ack returns.
func wbLanded(x any) {
	j := x.(*wbJob)
	c, va, data, home, done := j.c, j.va, j.data, j.home, j.done
	c.freeWB(j, false)
	c.mblades[int(home)].WritePage(va, data)
	done()
}

func (c *Rack) freeWB(j *wbJob, callDone bool) {
	done := j.done
	j.done, j.data = nil, nil
	c.wbFree.Put(j)
	if callDone {
		done()
	}
}

// checkConfig validates and defaults one rack's configuration.
func checkConfig(cfg Config) (Config, error) {
	if cfg.ComputeBlades < 1 || cfg.MemoryBlades < 1 {
		return cfg, fmt.Errorf("core: need at least one compute and one memory blade")
	}
	if cfg.CachePagesPerBlade < 1 {
		return cfg, fmt.Errorf("core: cache must hold at least one page")
	}
	if cfg.StoreBufferDepth == 0 {
		cfg.StoreBufferDepth = 16
	}
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = 30 * sim.Nanosecond
	}
	if cfg.Migration.BatchPages == 0 {
		cfg.Migration.BatchPages = DefaultMigrationConfig().BatchPages
	}
	if cfg.Migration.BatchGap == 0 {
		cfg.Migration.BatchGap = DefaultMigrationConfig().BatchGap
	}
	if cfg.Migration.DetectionDelay == 0 {
		cfg.Migration.DetectionDelay = DefaultMigrationConfig().DetectionDelay
	}
	return cfg, nil
}

// newRack builds and wires one rack onto the pod's engine and collector.
// The construction order (stat handles, fabric, controller, nodes,
// blades, directory, splitter) fixes resource identities and therefore
// the event schedule; it must stay exactly what the single-rack Cluster
// constructor did so a 1-rack pod is bit-identical to the pre-pod code.
func newRack(pod *Pod, idx int, cfg Config) (*Rack, error) {
	cfg, err := checkConfig(cfg)
	if err != nil {
		return nil, err
	}

	asicCfg := cfg.ASIC
	if cfg.Consistency == PSOPlus {
		// MIND-PSO+ simulates infinite directory capacity (§7.1).
		asicCfg.SlotCapacity = 0
	}

	c := &Rack{
		pod: pod,
		idx: idx,
		cfg: cfg,
		eng: pod.eng,
		col: pod.col,
	}
	if pod.multiRack {
		c.eng = sim.NewEngine()
		c.col = stats.NewCollector()
	}
	c.hLostWrites = c.col.Handle(stats.CtrLostWrites)
	c.hBladeEvents = c.col.Handle(stats.CtrBladeEvents)
	c.hMigratedPages = c.col.Handle(stats.CtrMigratedPages)
	c.hKills = c.col.Handle(stats.CtrBladeKills)
	c.hRecoveries = c.col.Handle(stats.CtrBladeRecoveries)
	if pod.multiRack {
		c.hCrossMsgs = c.col.Handle(stats.CtrCrossRackMsgs)
		c.hPromotedVMAs = c.col.Handle(stats.CtrPromotedVMAs)
		c.hPromotedPages = c.col.Handle(stats.CtrPromotedPages)
	}
	c.fab = fabric.New(c.eng, cfg.Fabric)
	c.ctl = ctrlplane.NewController(asicCfg, cfg.Placement, cfg.ComputeBlades)
	if pod.multiRack {
		// Each rack gets a disjoint 1 TB stripe of the pod-global
		// virtual address space (enforced end-to-end by the allocator),
		// so a physical page store lent across racks can never see
		// aliased addresses. Rack 0 keeps the classic single-rack base;
		// a 1-rack pod stays unbounded, exactly the pre-pod behavior.
		const stripe = uint64(1) << 40
		base := mem.VA(uint64(idx) * stripe)
		if idx == 0 {
			base = mem.VA(1) << 32
		}
		c.ctl.Allocator().SetAddressStripe(base, uint64(mem.VA(uint64(idx+1)*stripe)-base))
	}

	for i := 0; i < cfg.ComputeBlades; i++ {
		c.fab.AddNode(fabric.NodeID(i))
	}
	for m := 0; m < cfg.MemoryBlades; m++ {
		c.fab.AddNode(memNodeBase + fabric.NodeID(m))
		if _, err := c.ctl.Allocator().AddBlade(cfg.MemoryBladeCapacity); err != nil {
			return nil, fmt.Errorf("core: register memory blade %d: %w", m, err)
		}
		c.mblades = append(c.mblades, memblade.New(m))
		c.mbOwner = append(c.mbOwner, idx)
		c.mbOwnNode = append(c.mbOwnNode, memNodeBase+fabric.NodeID(m))
		c.remoteHeat = append(c.remoteHeat, 0)
	}

	c.dir = coherence.NewDirectory(coherence.Config{
		InitialRegionSize:      cfg.InitialRegionSize,
		TopLevelSize:           cfg.TopLevelRegionSize,
		SequentialInvalidation: cfg.SequentialInvalidation,
		ExclusiveOnColdRead:    cfg.ExclusiveReads,
	}, coherence.Deps{
		Engine:      c.eng,
		Fabric:      c.fab,
		ASIC:        c.ctl.ASIC(),
		Collector:   c.col,
		Translate: c.ctl.Allocator().Translate,
		Protect:   c.ctl.Protection().Check,
		MemFetch:  c.memFetch,
		BladeNode: func(i int) fabric.NodeID { return fabric.NodeID(i) },
	})

	for i := 0; i < cfg.ComputeBlades; i++ {
		bcfg := cfg.Blade
		if bcfg.PageFaultCost == 0 {
			bcfg = computeblade.DefaultConfig(i, cfg.CachePagesPerBlade)
		}
		bcfg.ID = i
		bcfg.CachePages = cfg.CachePagesPerBlade
		blade := computeblade.New(bcfg, computeblade.Deps{
			Engine:    c.eng,
			Collector: c.col,
			SendRequest: func(i int) func(mem.PDID, mem.VA, mem.Perm, func(coherence.Completion)) {
				return func(pdid mem.PDID, va mem.VA, want mem.Perm, done func(coherence.Completion)) {
					j := c.newReqJob()
					j.blade, j.pdid, j.va, j.want, j.done = i, pdid, va, want, done
					c.fab.SendToSwitchArg(fabric.NodeID(i), fabric.CtrlMsgBytes, reqAtSwitch, j)
				}
			}(i),
			Writeback: func(i int) func(mem.VA, []byte, func()) {
				return func(va mem.VA, data []byte, done func()) {
					c.writeback(fabric.NodeID(i), va, data, done)
				}
			}(i),
			FetchData: c.fetchData,
			Reset: func(va mem.VA, done func()) {
				// Reset goes through the (slow) control plane (§4.4).
				c.fab.CtrlCall(fabric.SwitchNode, func() {
					c.dir.ResetRegion(va, done)
				})
			},
		})
		c.cblades = append(c.cblades, blade)
		c.dir.RegisterBlade(i, blade)
	}

	// Bounded Splitting runs as a control-plane epoch loop (§5).
	if !cfg.DisableSplitting {
		scfg := ctrlplane.DefaultSplitterConfig()
		if cfg.SplitterEpoch > 0 {
			scfg.Epoch = int64(cfg.SplitterEpoch)
		}
		if cfg.TopLevelRegionSize > 0 {
			scfg.TopLevelSize = cfg.TopLevelRegionSize
		}
		if cfg.SplitterC > 0 {
			scfg.C = cfg.SplitterC
		}
		c.splitter = ctrlplane.NewSplitter(scfg, c.dir)
		c.scheduleEpoch(sim.Duration(scfg.Epoch))
	}
	return c, nil
}

func (c *Rack) scheduleEpoch(epoch sim.Duration) {
	c.epochTick = c.eng.Schedule(epoch, func() {
		c.splitter.RunEpoch()
		c.col.Series(c.seriesName("directory_entries")).Append(c.eng.Now(), float64(c.dir.SlotsInUse()))
		c.scheduleEpoch(epoch)
	})
}

// seriesName qualifies a per-rack series on the pod-shared collector.
// Rack 0 keeps the bare name every single-rack consumer reads.
func (c *Rack) seriesName(name string) string {
	if c.idx == 0 {
		return name
	}
	return fmt.Sprintf("%s[rack%d]", name, c.idx)
}

// StopEpochs cancels the splitter's epoch loop (end of run).
func (c *Rack) StopEpochs() {
	if c.epochTick != nil {
		c.eng.Cancel(c.epochTick)
		c.epochTick = nil
	}
}

// newReqJob takes a request job from the free list (or allocates one).
func (c *Rack) newReqJob() *reqJob {
	if j := c.reqFree.Get(); j != nil {
		return j
	}
	return &reqJob{c: c}
}

// remoteBlade reports whether registered memory blade id is homed in
// another rack of the pod.
func (c *Rack) remoteBlade(id ctrlplane.BladeID) bool {
	return c.mbOwner[int(id)] != c.idx
}

// memFetch serves the directory's page-fetch round trip against the
// home memory blade: a control request to the blade, the blade-side
// DMA, and the 4 KB page back, with fn(arg) firing when the page is
// ready at this rack's switch. For a local blade that is the exact
// classic event chain; for a borrowed blade the round trip crosses the
// pod interconnect in both directions (memRound, pod.go).
func (c *Rack) memFetch(id ctrlplane.BladeID, fn func(any), arg any) {
	c.memRound(id, fabric.CtrlMsgBytes, fabric.PageBytes, c.fab.MemDMA(), fn, arg)
}

// writeback models a one-sided RDMA page write from a blade to the home
// memory blade, via the switch.
func (c *Rack) writeback(from fabric.NodeID, va mem.VA, data []byte, done func()) {
	j := c.wbFree.Get()
	if j == nil {
		j = &wbJob{c: c}
	}
	j.va, j.data, j.done = va, nil, done
	if data != nil {
		if j.buf == nil {
			j.buf = make([]byte, mem.PageSize)
		}
		copy(j.buf, data)
		j.data = j.buf
	}
	c.fab.SendToSwitchArg(from, fabric.PageBytes, wbAtSwitch, j)
}

// fetchData copies page bytes from the home memory blade at the simulated
// moment of delivery, filling the caller's recycled buffer when one is
// offered (allocation-free on the steady-state fault path).
func (c *Rack) fetchData(va mem.VA, dst []byte) []byte {
	home, err := c.ctl.Allocator().Translate(va)
	if err != nil {
		return nil
	}
	return c.mblades[int(home)].ReadPageInto(va, dst)
}

// Pod returns the pod this rack is a member of.
func (c *Rack) Pod() *Pod { return c.pod }

// Recovering reports whether a failure recovery (blade-kill re-homing
// or switch failover) is in flight on this rack — the recovery blackout
// the serving layer's brownout admission keys off. Rack event or
// barrier context only.
func (c *Rack) Recovering() bool { return c.recovering > 0 }

// RackIndex returns this rack's index within its pod.
func (c *Rack) RackIndex() int { return c.idx }

// Engine exposes the simulation engine.
func (c *Rack) Engine() *sim.Engine { return c.eng }

// Collector exposes run metrics.
func (c *Rack) Collector() *stats.Collector { return c.col }

// Controller exposes the switch control plane.
func (c *Rack) Controller() *ctrlplane.Controller { return c.ctl }

// Directory exposes the coherence directory (tests, experiments).
func (c *Rack) Directory() *coherence.Directory { return c.dir }

// Splitter exposes the Bounded Splitting controller (nil when disabled).
func (c *Rack) Splitter() *ctrlplane.Splitter { return c.splitter }

// Blade returns compute blade i.
func (c *Rack) Blade(i int) *computeblade.Blade { return c.cblades[i] }

// MemBlade returns memory blade m.
func (c *Rack) MemBlade(m int) *memblade.Blade { return c.mblades[m] }

// BorrowedBlades returns how many of this rack's registered memory
// blades are physically homed in other racks.
func (c *Rack) BorrowedBlades() int { return c.borrowed }

// Config returns the rack's configuration.
func (c *Rack) Config() Config { return c.cfg }

// Now returns current virtual time.
func (c *Rack) Now() sim.Time { return c.eng.Now() }

// await drives the engine until done() has been called by some event.
// In a multi-rack pod the whole pod must advance — the operation may
// involve other racks — so the pod executor drives windows until the
// completion fires. Blocking waits always drive inline-serially, even
// when the pod is configured with workers: the waiting caller sits
// outside any rack's event context, and several blocking control-plane
// operations (blade kills, drains) mutate state across racks.
func (c *Rack) await(op func(done func())) {
	if c.pod.multiRack {
		fired := false
		op(func() { fired = true })
		c.pod.exec.drive(false, 0, func() bool { return fired })
		return
	}
	fired := false
	op(func() { fired = true })
	steps := 0
	for !fired {
		if !c.eng.Step() {
			panic("core: await ran out of events (protocol wedge)")
		}
		steps++
		if steps > 500_000_000 {
			panic("core: await exceeded step budget")
		}
	}
}

// InjectFailure installs a message-drop hook on the fabric (nil clears).
func (c *Rack) InjectFailure(drop func(from, to fabric.NodeID) bool) {
	c.fab.DropFn = drop
}

// Failover switches to the backup control plane/data plane (§4.4).
// Directory entries are data-plane state and are not replicated: every
// live region is reset first (compute blades flush their data), then the
// backup ASIC is reconstructed from control-plane state and becomes
// active. This is the blocking wrapper around KillSwitch, the
// in-simulation failover event (elasticity.go).
func (c *Rack) Failover() {
	c.KillSwitch()
}
