package core

// Pod-scale failure injection (§4.4 at pod scale): blade kills, blade
// drains and switch failovers scheduled at absolute virtual times on
// any rack of the pod, deterministic under the windowed executor.
//
// Under parallel execution a failure cannot simply be called from
// outside: the moment it lands relative to each shard's event schedule
// must be independent of the worker count. So scheduled faults follow
// the borrow-negotiation pattern (parexec.go): registration only
// queues the fault on its rack; the window barrier — the pod's
// exclusive section, with every engine parked — converts faults due
// inside the next window into ordinary rack events at their exact
// injection times, scanning racks in index order. Serial and N-worker
// runs therefore produce bit-identical fault timelines.
//
// The genuinely cross-rack case is a borrowed blade dying: the page
// store belongs to the borrower's shard (the lease), but the physical
// device and its fabric port live in the lender. The injector splits
// the death accordingly — the lender's shard blackens the port at the
// kill instant, the borrower's shard runs the contents loss, the
// detection delay and the re-home/page-loss recovery — so neither
// shard ever touches the other's state, and the lease is retired when
// recovery completes. Ownership is stable between barriers (leases
// only move at barriers), so resolving the owner at injection time is
// exact; faults are injected before the barrier's lease traffic, so a
// blade lent or returned at the same boundary is seen by the fault as
// still belonging to its pre-barrier rack.

import (
	"fmt"

	"mind/internal/ctrlplane"
	"mind/internal/sim"
)

// podFault is one scheduled failure event. Exactly one of the done
// callbacks is set, matching kind.
type podFault struct {
	kind  int // faultKill, faultDrain, faultSwitch
	blade ctrlplane.BladeID
	at    sim.Time

	killDone   func(KillReport, error)
	drainDone  func(DrainReport, error)
	switchDone func(SwitchFailoverReport, error)
}

const (
	faultKill = iota
	faultDrain
	faultSwitch
)

// KillMemBladeAt schedules a memory-blade failure on rack's blade
// victim at virtual time at. done fires in the rack's event context
// when recovery completes (or immediately after at, with an error, if
// the blade is unknown, already dead or retired). The blade is named
// by the rack that registers it: a borrowed blade is addressed at its
// borrower, whose tables still know it — the lender retired its id
// when the lease was granted.
func (p *Pod) KillMemBladeAt(rack int, victim ctrlplane.BladeID, at sim.Time, done func(KillReport, error)) error {
	return p.scheduleFault(rack, &podFault{kind: faultKill, blade: victim, at: at, killDone: done})
}

// DrainMemBladeAt schedules a graceful drain of rack's blade victim at
// virtual time at; done fires when the blade is empty and retired.
// Draining a borrowed blade is supported (see DrainMemBladeAsync).
func (p *Pod) DrainMemBladeAt(rack int, victim ctrlplane.BladeID, at sim.Time, done func(DrainReport, error)) error {
	return p.scheduleFault(rack, &podFault{kind: faultDrain, blade: victim, at: at, drainDone: done})
}

// KillSwitchAt schedules a switch failover on rack at virtual time at;
// done fires when the backup data plane is live.
func (p *Pod) KillSwitchAt(rack int, at sim.Time, done func(SwitchFailoverReport, error)) error {
	return p.scheduleFault(rack, &podFault{kind: faultSwitch, at: at, switchDone: done})
}

// scheduleFault validates and queues one fault. Main-goroutine or
// barrier context only (engines parked), like AddTenant/SampleEvery.
func (p *Pod) scheduleFault(rack int, f *podFault) error {
	if rack < 0 || rack >= len(p.racks) {
		return fmt.Errorf("core: pod has no rack %d", rack)
	}
	if f.at < p.Now() {
		return fmt.Errorf("core: fault time %v is in the past (now %v)", f.at, p.Now())
	}
	r := p.racks[rack]
	if !p.multiRack {
		// Classic single-engine path: the fault is just an event.
		p.injectFault(r, f)
		return nil
	}
	// If the fault is due before the next barrier would see it, inject
	// now — registration happens with every engine parked on the window
	// cursor, which is exactly barrier context.
	if f.at < p.exec.vnow.Add(p.exec.window) {
		p.injectFault(r, f)
		return nil
	}
	r.pendingFaults = append(r.pendingFaults, f)
	return nil
}

// injectDueFaults converts queued faults due before horizon into rack
// events. Barrier context only; racks are scanned in index order and
// each rack's faults in registration order, so the injection schedule
// is a pure function of the registered faults.
func (x *podExec) injectDueFaults(horizon sim.Time) {
	for _, r := range x.p.racks {
		if len(r.pendingFaults) == 0 {
			continue
		}
		rest := r.pendingFaults[:0]
		for _, f := range r.pendingFaults {
			if f.at >= horizon {
				rest = append(rest, f)
				continue
			}
			x.p.injectFault(r, f)
		}
		r.pendingFaults = rest
	}
}

// faultJumpBound returns the maximum number of grid windows the
// sparse-horizon executor may advance without deferring a queued
// fault's injection barrier: a fault at A is converted by the first
// barrier end with A < end + W (see injectDueFaults' horizon), so the
// jump must stop at the minimal k with vnow + kW > A - W. Queued faults
// always satisfy A >= vnow + W (earlier ones were injected at
// registration or a prior barrier), so the bound is at least 1.
// Barrier context only.
func (x *podExec) faultJumpBound() int64 {
	w, vnow := int64(x.window), int64(x.vnow)
	k := int64(1) << 62
	for _, r := range x.p.racks {
		for _, f := range r.pendingFaults {
			if kF := (int64(f.at)-w-vnow)/w + 1; kF < k {
				k = kF
			}
		}
	}
	return k
}

// injectFault schedules the fault's event(s) at its injection time.
// Exclusive context (barrier or parked engines): it may read ownership
// tables and schedule on more than one rack's engine.
func (p *Pod) injectFault(r *Rack, f *podFault) {
	switch f.kind {
	case faultKill:
		victim, done := f.blade, f.killDone
		if int(victim) >= 0 && int(victim) < len(r.mblades) && r.remoteBlade(victim) {
			// Borrowed blade: the port blackens in the lender's shard,
			// the contents loss and recovery run in the borrower's —
			// both at the kill instant.
			owner := p.racks[r.mbOwner[int(victim)]]
			node := r.mbOwnNode[int(victim)]
			owner.eng.At(f.at, func() { owner.fab.SetNodeDead(node, true) })
			r.eng.At(f.at, func() { r.killMemBladeAsync(victim, false, done) })
			return
		}
		r.eng.At(f.at, func() { r.killMemBladeAsync(victim, true, done) })
	case faultDrain:
		victim, done := f.blade, f.drainDone
		r.eng.At(f.at, func() { r.DrainMemBladeAsync(victim, done) })
	case faultSwitch:
		done := f.switchDone
		r.eng.At(f.at, func() {
			r.KillSwitchAsync(func(rep SwitchFailoverReport) { done(rep, nil) })
		})
	}
}
