package core

// Pod-scale failure injection: liveness of repeated kills (a dead or
// retired blade is an explicit error, never a panic or a wedge), drain
// of a borrowed blade, and the genuinely cross-rack failure — a
// lender's blade dying while the borrower holds pages on it.

import (
	"strings"
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
)

// TestKillMemBladeLiveness: killing a blade that is unknown, already
// dead, or retired returns an explicit error instead of panicking or
// re-running recovery over a corpse.
func TestKillMemBladeLiveness(t *testing.T) {
	c := newTestCluster(t, 1, 3)
	p := c.Exec("app")
	if _, err := p.Mmap(1<<20, mem.PermReadWrite); err != nil {
		t.Fatal(err)
	}

	if _, err := c.KillMemBlade(0); err != nil {
		t.Fatalf("first kill: %v", err)
	}
	if _, err := c.KillMemBlade(0); err == nil || !strings.Contains(err.Error(), "already dead") {
		t.Fatalf("second kill of blade 0: err = %v, want already-dead error", err)
	}
	if _, err := c.KillMemBlade(99); err == nil || !strings.Contains(err.Error(), "no memory blade") {
		t.Fatalf("kill of unknown blade: err = %v, want no-such-blade error", err)
	}

	// A drained (retired but healthy) blade is equally unkillable.
	if _, err := c.DrainMemBlade(1); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := c.KillMemBlade(1); err == nil || !strings.Contains(err.Error(), "retired") {
		t.Fatalf("kill of retired blade: err = %v, want retired error", err)
	}

	// The rack still works end to end on the survivor.
	vma, err := p.Mmap(1<<20, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.SpawnThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(vma.Base+8, 5); err != nil {
		t.Fatal(err)
	}
}

// borrowedBladeID returns the id of the rack's (single) live borrowed
// blade, or fails the test.
func borrowedBladeID(t *testing.T, r *Rack) ctrlplane.BladeID {
	t.Helper()
	alloc := r.Controller().Allocator()
	for id := 0; id < r.MemBladeCount(); id++ {
		bid := ctrlplane.BladeID(id)
		if r.remoteBlade(bid) && !alloc.BladeRetired(bid) {
			return bid
		}
	}
	t.Fatal("rack holds no live borrowed blade")
	return 0
}

// TestDrainBorrowedBladeMovesDataAndReleasesLease: draining a borrowed
// blade is a supported retirement path — the cross-rack-aware copy
// moves every page back to local memory, the TCAM rewrites are local to
// the borrower, and finishing the drain releases the lease.
func TestDrainBorrowedBladeMovesDataAndReleasesLease(t *testing.T) {
	pod := newTestPod(t, PromotionConfig{Disable: true})
	r0 := pod.Rack(0)
	p := r0.Exec("borrower")

	filler, err := p.Mmap(1024*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	work, err := p.Mmap(256*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r0.BorrowedBlades() != 1 {
		t.Fatalf("borrowed=%d, want 1", r0.BorrowedBlades())
	}
	victim := borrowedBladeID(t, r0)

	const pages = 24
	th, err := p.SpawnThread(0)
	if err != nil {
		t.Fatal(err)
	}
	fillPages(t, th, work.Base, pages)
	r0.KillSwitch() // flush dirty pages down to the borrowed blade
	if r0.MemBlade(int(victim)).MaterializedPages() == 0 {
		t.Fatal("setup: borrowed blade holds no pages")
	}

	// Free local capacity so the drain has somewhere to move the pages.
	if err := p.Munmap(filler.Base); err != nil {
		t.Fatal(err)
	}
	drep, err := r0.DrainMemBlade(victim)
	if err != nil {
		t.Fatalf("drain of borrowed blade: %v", err)
	}
	if drep.PagesMoved == 0 || drep.Blackout() <= 0 {
		t.Fatalf("implausible drain report: %+v", drep)
	}
	if r0.BorrowedBlades() != 0 || pod.Leases() != 0 {
		t.Fatalf("lease not released: borrowed=%d leases=%d", r0.BorrowedBlades(), pod.Leases())
	}
	alloc := r0.Controller().Allocator()
	if !alloc.BladeRetired(victim) {
		t.Fatal("drained borrowed blade not retired")
	}
	for i := 0; i < pages; i++ {
		home, err := alloc.Translate(work.Base + mem.VA(i)*mem.PageSize)
		if err != nil {
			t.Fatalf("translate page %d: %v", i, err)
		}
		if r0.remoteBlade(home) {
			t.Fatalf("page %d still homed on a remote blade after drain", i)
		}
	}
	// Data survived the move home.
	checkPages(t, th, work.Base, pages, 1)
}

// TestPodKillBorrowedBladeRecovers is the cross-rack failure the pod
// injector exists for: the physical device lives in the lender, the
// pages belong to the borrower. The kill blackens the lender's fabric
// port and wipes the device; after the detection delay the borrower
// re-homes the vma locally (its contents read zero — the pages died
// with the blade), the lease is retired, and untouched local data is
// intact.
func TestPodKillBorrowedBladeRecovers(t *testing.T) {
	pod := newTestPod(t, PromotionConfig{Disable: true})
	r0 := pod.Rack(0)
	p := r0.Exec("borrower")

	// Exact power-of-two areas fill the 1024-page local blade (the
	// allocator's TCAM ranges round to pow2): 256 + 512 + 256 = 1024,
	// so the working vma must borrow.
	keep, err := p.Mmap(256*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	filler, err := p.Mmap(512*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mmap(256*mem.PageSize, mem.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	work, err := p.Mmap(256*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r0.BorrowedBlades() != 1 {
		t.Fatalf("borrowed=%d, want 1", r0.BorrowedBlades())
	}
	victim := borrowedBladeID(t, r0)
	ownNode := r0.mbOwnNode[int(victim)]

	const pages = 16
	th, err := p.SpawnThread(0)
	if err != nil {
		t.Fatal(err)
	}
	fillPages(t, th, keep.Base, pages)
	fillPages(t, th, work.Base, pages)
	r0.KillSwitch() // flush dirty pages down to the blades
	if r0.MemBlade(int(victim)).MaterializedPages() == 0 {
		t.Fatal("setup: borrowed blade holds no pages")
	}
	// Free local capacity so recovery can re-home the borrowed vma.
	if err := p.Munmap(filler.Base); err != nil {
		t.Fatal(err)
	}

	var krep KillReport
	var kerr error
	done := false
	at := pod.Now().Add(20 * sim.Microsecond)
	if err := pod.KillMemBladeAt(0, victim, at, func(r KillReport, e error) {
		krep, kerr, done = r, e, true
	}); err != nil {
		t.Fatal(err)
	}
	pod.AdvanceTime(2 * sim.Millisecond)
	if !done {
		t.Fatal("kill recovery never completed")
	}
	if kerr != nil {
		t.Fatalf("kill: %v", kerr)
	}
	if krep.PagesLost == 0 || krep.Allocations == 0 || krep.VMAsLost != 0 {
		t.Fatalf("implausible kill report: %+v", krep)
	}
	if krep.Blackout() < r0.Config().Migration.DetectionDelay {
		t.Fatalf("blackout %v shorter than detection delay", krep.Blackout())
	}
	// The lender's fabric port for the dead device is black.
	if !pod.Rack(1).fab.NodeDead(ownNode) {
		t.Fatal("lender fabric port not marked dead")
	}
	// The lease is retired, not returned.
	if r0.BorrowedBlades() != 0 || pod.Leases() != 0 {
		t.Fatalf("lease not retired: borrowed=%d leases=%d", r0.BorrowedBlades(), pod.Leases())
	}
	alloc := r0.Controller().Allocator()
	if !alloc.BladeRetired(victim) {
		t.Fatal("dead borrowed blade not retired")
	}
	// The borrowed vma re-homed locally and its contents died.
	for i := 0; i < pages; i++ {
		home, err := alloc.Translate(work.Base + mem.VA(i)*mem.PageSize)
		if err != nil {
			t.Fatalf("translate page %d: %v", i, err)
		}
		if r0.remoteBlade(home) {
			t.Fatalf("page %d still homed remotely after kill", i)
		}
	}
	checkPages(t, th, work.Base, pages, 0)
	// Untouched local data survived; the vma serves new writes.
	checkPages(t, th, keep.Base, pages, 1)
	if err := th.Store(work.Base+8, 42); err != nil {
		t.Fatal(err)
	}
	if got, _ := th.Load(work.Base + 8); got != 42 {
		t.Fatalf("post-recovery store lost: %d", got)
	}
}

// TestPodFaultValidation: fault registration rejects unknown racks and
// times in the past, and a fault on a bogus blade reports its error
// through the completion callback without disturbing the pod.
func TestPodFaultValidation(t *testing.T) {
	pod := newTestPod(t, PromotionConfig{Disable: true})
	nop := func(KillReport, error) {}
	if err := pod.KillMemBladeAt(5, 0, pod.Now().Add(time1us), nop); err == nil {
		t.Error("kill on unknown rack accepted")
	}
	if err := pod.KillMemBladeAt(-1, 0, pod.Now().Add(time1us), nop); err == nil {
		t.Error("kill on negative rack accepted")
	}
	pod.AdvanceTime(10 * sim.Microsecond)
	if err := pod.KillMemBladeAt(0, 0, 0, nop); err == nil {
		t.Error("kill in the past accepted")
	}

	var kerr error
	fired := false
	at := pod.Now().Add(5 * sim.Microsecond)
	if err := pod.KillMemBladeAt(0, 77, at, func(_ KillReport, e error) { kerr, fired = e, true }); err != nil {
		t.Fatal(err)
	}
	pod.AdvanceTime(50 * sim.Microsecond)
	if !fired {
		t.Fatal("invalid-blade kill never reported")
	}
	if kerr == nil || !strings.Contains(kerr.Error(), "no memory blade") {
		t.Fatalf("invalid-blade kill err = %v", kerr)
	}
}

const time1us = sim.Microsecond
