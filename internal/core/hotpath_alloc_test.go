package core

// Steady-state allocation budget regression tests (the hot-path contract
// DESIGN.md documents): a cache hit allocates nothing, and a full
// blocking-fault round trip through fabric, directory, invalidation and
// fault machinery allocates nothing either once the pools are warm (the
// directory's per-request `pending` record is pooled as of PR 4).

import (
	"testing"

	"mind/internal/computeblade"
	"mind/internal/mem"
)

// allocCluster builds a small warm rack for allocation measurements.
func allocCluster(t *testing.T) (*Cluster, *Process, mem.VMA) {
	t.Helper()
	cfg := DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 1024
	cfg.DisableSplitting = true // no epoch series appends mid-measurement
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Exec("allocs")
	vma, err := p.Mmap(1<<20, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	return c, p, vma
}

// TestAllocsCacheHit pins the cache-hit access path at zero allocations.
func TestAllocsCacheHit(t *testing.T) {
	c, p, vma := allocCluster(t)
	blade := c.Blade(0)
	// Fault the page in once.
	th, err := p.SpawnThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Touch(vma.Base, true); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if hit := blade.Access(p.PID(), vma.Base, false, nil); !hit {
			t.Fatal("expected cache hit")
		}
	}); avg != 0 {
		t.Errorf("cache-hit access allocates %v/op, want 0", avg)
	}
}

// TestAllocsBlockingFault pins the steady-state remote-fault round trip.
// Two blades write-ping-pong one page, so every access is an M->M
// transition: fault entry, request through the switch, an invalidation
// multicast to the old owner (flush + ACK), the memory fetch, and the
// PTE install. Everything on the path — events, faults, pendings,
// invalidation jobs, ACK contexts, fabric jobs — is pooled, so the
// budget is zero.
func TestAllocsBlockingFault(t *testing.T) {
	c, p, vma := allocCluster(t)
	var done bool
	cb := func(computeblade.AccessResult) { done = true }
	turn := 0
	roundTrip := func() {
		done = false
		b := c.Blade(turn % 2)
		turn++
		if hit := b.Access(p.PID(), vma.Base, true, cb); hit {
			t.Fatal("expected a miss (ownership should have moved)")
		}
		for !done {
			if !c.Engine().Step() {
				t.Fatal("engine drained before fault completed")
			}
		}
	}
	// Warm every pool (fault objects, pendings, events, inv jobs, ack
	// contexts, fabric jobs) and the region's sharer bitmap.
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	// Zero budget: with the directory pending pooled (PR 4), a steady
	// M->M ownership ping-pong allocates nothing at all.
	const budget = 0.0
	if avg := testing.AllocsPerRun(500, roundTrip); avg > budget {
		t.Errorf("blocking fault round trip allocates %v/op, budget %v", avg, budget)
	}
}
