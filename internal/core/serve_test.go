package core

import (
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// fixedGap is a deterministic arrival process for tests: one arrival
// every d of virtual time.
type fixedGap sim.Duration

func (g fixedGap) Next(now sim.Time) sim.Duration { return sim.Duration(g) }

// serveCluster builds a small serving cluster with one tenant process
// and a round-robin op stream over its vma.
func serveCluster(t *testing.T, blades int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(blades, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newTestServing builds a serving layer on c's pod, failing the test
// on construction errors.
func newTestServing(t *testing.T, c *Cluster, cfg ServeConfig) *Serving {
	t.Helper()
	s, err := NewServing(c.Rack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustRun drives the serving run, failing the test on errors.
func mustRun(t *testing.T, s *Serving) sim.Time {
	t.Helper()
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return end
}

// roundRobinOps returns an endless op stream striding pages of a vma.
func roundRobinOps(base mem.VA, pages uint64) func() (mem.VA, bool) {
	i := uint64(0)
	return func() (mem.VA, bool) {
		va := base + mem.VA((i%pages)*mem.PageSize)
		i++
		return va, i%4 == 0
	}
}

func addServeTenant(t *testing.T, c *Cluster, s *Serving, name string, blade int, gap sim.Duration, limiter *ctrlplane.TokenBucket) {
	t.Helper()
	p := c.Exec(name)
	vma, err := p.Mmap(64*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	err = s.AddTenant(TenantWorkload{
		Name:    name,
		Proc:    p,
		Blade:   blade,
		Arrival: fixedGap(gap),
		NextOp:  roundRobinOps(vma.Base, 64),
		Limiter: limiter,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServingCompletesAllAdmitted: a tenant below saturation has every
// arrival admitted, served, and latency-accounted.
func TestServingCompletesAllAdmitted(t *testing.T) {
	c := serveCluster(t, 2)
	s := newTestServing(t, c, ServeConfig{Horizon: 10 * sim.Millisecond})
	addServeTenant(t, c, s, "a", 0, 100*sim.Microsecond, nil)
	mustRun(t, s)

	col := c.Collector()
	arr := col.Counter(stats.CtrServeArrivals)
	done := col.Counter(stats.CtrServeCompleted)
	if arr == 0 {
		t.Fatal("no arrivals generated")
	}
	// 10 ms / 100 µs = ~100 arrivals.
	if arr < 90 || arr > 110 {
		t.Errorf("arrivals = %d, want ~100", arr)
	}
	if done != arr {
		t.Errorf("completed %d of %d arrivals (unsaturated tenant must drain fully)", done, arr)
	}
	if col.Counter(stats.CtrServeThrottled) != 0 || col.Counter(stats.CtrServeDropped) != 0 {
		t.Error("no-QoS unsaturated run must not shed requests")
	}
	lat := col.StreamHist("serve_lat[a]")
	if lat.Count() != done {
		t.Errorf("latency samples %d != completed %d", lat.Count(), done)
	}
	if lat.Percentile(99) <= 0 {
		t.Error("p99 must be positive")
	}
}

// TestServingOpenLoopQueueing: past saturation, latency grows with the
// backlog — the open-loop signature a closed-loop workload cannot
// produce — and per-tenant accounting separates the aggressor from the
// compliant tenant.
func TestServingOpenLoopQueueing(t *testing.T) {
	// Saturated: arrivals every 200 ns on one blade whose per-request
	// service (think + fault) is far slower.
	c := serveCluster(t, 1)
	s := newTestServing(t, c, ServeConfig{Horizon: sim.Millisecond, QueueCap: 1 << 20})
	addServeTenant(t, c, s, "hot", 0, 200*sim.Nanosecond, nil)
	mustRun(t, s)
	hotP99 := c.Collector().StreamHist("serve_lat[hot]").Percentile(99)

	// Same workload far below saturation.
	c2 := serveCluster(t, 1)
	s2 := newTestServing(t, c2, ServeConfig{Horizon: sim.Millisecond, QueueCap: 1 << 20})
	addServeTenant(t, c2, s2, "cool", 0, 50*sim.Microsecond, nil)
	mustRun(t, s2)
	coolP99 := c2.Collector().StreamHist("serve_lat[cool]").Percentile(99)

	if hotP99 < 10*coolP99 {
		t.Errorf("saturated p99 %d ns not >> unsaturated p99 %d ns (no queueing collapse)", hotP99, coolP99)
	}
}

// TestServingQoSThrottling: a token bucket sheds an aggressor's excess
// and keeps the shared blade's backlog bounded for the compliant
// tenant.
func TestServingQoSThrottling(t *testing.T) {
	// Both tenants on blade 0; aggressor at 5M req/s, limited to 100k.
	c := serveCluster(t, 1)
	s := newTestServing(t, c, ServeConfig{Horizon: 2 * sim.Millisecond, QueueCap: 1 << 20})
	addServeTenant(t, c, s, "victim", 0, 100*sim.Microsecond, nil)
	addServeTenant(t, c, s, "aggr", 0, 200*sim.Nanosecond, ctrlplane.NewTokenBucket(100_000, 16))
	mustRun(t, s)

	col := c.Collector()
	if col.Counter("serve_throttled[aggr]") == 0 {
		t.Error("aggressor over its contracted rate must be throttled")
	}
	if col.Counter("serve_throttled[victim]") != 0 {
		t.Error("tenant without a limiter must never be throttled")
	}
	aggrArr := col.Counter("serve_arrivals[aggr]")
	aggrDone := col.Counter("serve_completed[aggr]")
	if aggrDone >= aggrArr {
		t.Errorf("aggressor completed %d of %d arrivals; throttling admitted everything", aggrDone, aggrArr)
	}
	if got := col.Counter("serve_completed[victim]"); got == 0 {
		t.Error("victim starved completely")
	}
}

// TestServingQueueCapDrops: a bounded queue sheds load instead of
// growing without limit.
func TestServingQueueCapDrops(t *testing.T) {
	c := serveCluster(t, 1)
	s := newTestServing(t, c, ServeConfig{Horizon: sim.Millisecond, QueueCap: 8})
	addServeTenant(t, c, s, "a", 0, 200*sim.Nanosecond, nil)
	mustRun(t, s)
	col := c.Collector()
	if col.Counter(stats.CtrServeDropped) == 0 {
		t.Error("overloaded bounded queue must drop")
	}
	if arr, done, thr, drop := col.Counter(stats.CtrServeArrivals), col.Counter(stats.CtrServeCompleted),
		col.Counter(stats.CtrServeThrottled), col.Counter(stats.CtrServeDropped); arr != done+thr+drop {
		t.Errorf("conservation violated: %d arrivals != %d completed + %d throttled + %d dropped",
			arr, done, thr, drop)
	}
}

// TestServingDeterministic: identical runs produce identical counters
// and identical percentile bits.
func TestServingDeterministic(t *testing.T) {
	run := func() (uint64, uint64, int64, sim.Time) {
		c := serveCluster(t, 2)
		s := newTestServing(t, c, ServeConfig{Horizon: 2 * sim.Millisecond})
		addServeTenant(t, c, s, "a", 0, 1*sim.Microsecond, ctrlplane.NewTokenBucket(400_000, 32))
		addServeTenant(t, c, s, "b", 1, 20*sim.Microsecond, nil)
		end := mustRun(t, s)
		col := c.Collector()
		return col.Counter(stats.CtrServeCompleted), col.Counter(stats.CtrServeThrottled),
			col.StreamHist("serve_lat[a]").Percentile(99), end
	}
	d1, t1, p1, e1 := run()
	d2, t2, p2, e2 := run()
	if d1 != d2 || t1 != t2 || p1 != p2 || e1 != e2 {
		t.Fatalf("serving run not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			d1, t1, p1, e1, d2, t2, p2, e2)
	}
}

// TestServingInvalidConfigs pins the error (not panic) contract for
// genuinely invalid serving configurations.
func TestServingInvalidConfigs(t *testing.T) {
	if _, err := NewServing(nil, ServeConfig{Horizon: sim.Millisecond}); err == nil {
		t.Error("NewServing(nil rack) must error")
	}
	if _, err := NewPodServing(nil, ServeConfig{Horizon: sim.Millisecond}); err == nil {
		t.Error("NewPodServing(nil pod) must error")
	}
	c := serveCluster(t, 1)
	if _, err := NewServing(c.Rack, ServeConfig{}); err == nil {
		t.Error("zero horizon must error")
	}
	if _, err := NewServing(c.Rack, ServeConfig{Horizon: -sim.Millisecond}); err == nil {
		t.Error("negative horizon must error")
	}
	s := newTestServing(t, c, ServeConfig{Horizon: sim.Millisecond})
	if _, err := s.Run(); err == nil {
		t.Error("Run with zero tenants must error")
	}
	p := c.Exec("t")
	vma, err := p.Mmap(4*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	bad := TenantWorkload{Name: "t", Proc: p, Blade: 7,
		Arrival: fixedGap(sim.Microsecond), NextOp: roundRobinOps(vma.Base, 4)}
	if err := s.AddTenant(bad); err == nil {
		t.Error("out-of-range blade must error")
	}
	bad.Blade = 0
	bad.Arrival = nil
	if err := s.AddTenant(bad); err == nil {
		t.Error("missing arrival process must error")
	}
}

// servePod builds a small multi-rack pod for sharded-serving tests:
// rack 0 is memory-poor (it borrows from the lenders), the rest have
// spare blades.
func servePod(t *testing.T, racks, blades, workers int) *Pod {
	t.Helper()
	pcfg := PodConfig{Workers: workers}
	for ri := 0; ri < racks; ri++ {
		rc := DefaultConfig(blades, 1)
		rc.CachePagesPerBlade = 256
		if ri == 0 {
			rc.MemoryBlades, rc.MemoryBladeCapacity = 1, 1<<20
		} else {
			rc.MemoryBlades, rc.MemoryBladeCapacity = 3, 1<<26
		}
		pcfg.Racks = append(pcfg.Racks, rc)
	}
	pod, err := NewPod(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return pod
}

// addPodServeTenant registers one tenant share on the given rack with a
// pages-sized vma (large enough shares on the memory-poor rack 0
// overflow its 1 MB blade and force a cross-rack borrow at mmap time).
func addPodServeTenant(t *testing.T, pod *Pod, s *Serving, name string, rack, blade, pages int, gap sim.Duration, limiter *ctrlplane.TokenBucket) {
	t.Helper()
	p := pod.Rack(rack).Exec(name)
	vma, err := p.Mmap(uint64(pages)*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	err = s.AddTenant(TenantWorkload{
		Name:    name,
		Proc:    p,
		Blade:   blade,
		Arrival: fixedGap(gap),
		NextOp:  roundRobinOps(vma.Base, uint64(pages)),
		Limiter: limiter,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServingMultiRack: the formerly-panicking configuration is now the
// supported path — per-rack shards serve their tenants inside the
// windowed executor, cross-rack faults ride borrowed blades, and the
// pod-wide merged counters conserve requests.
func TestServingMultiRack(t *testing.T) {
	pod := servePod(t, 3, 2, 0)
	s, err := NewPodServing(pod, ServeConfig{Horizon: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Rack 0's vma exceeds its 1 MB local blade, so its tenant's faults
	// cross the interconnect; a same-Name share on rack 1 exercises the
	// merged per-tenant accounting.
	addPodServeTenant(t, pod, s, "spanner", 0, 0, 512, 40*sim.Microsecond, nil)
	addPodServeTenant(t, pod, s, "spanner", 1, 1, 64, 60*sim.Microsecond, nil)
	addPodServeTenant(t, pod, s, "solo", 2, 0, 64, 50*sim.Microsecond, ctrlplane.NewTokenBucket(100_000, 8))
	if pod.Rack(0).BorrowedBlades() == 0 {
		t.Fatal("rack 0 should have borrowed memory for its tenant share")
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Error("run finished at virtual time 0")
	}
	col := pod.Collector()
	arr := col.Counter(stats.CtrServeArrivals)
	done := col.Counter(stats.CtrServeCompleted)
	thr := col.Counter(stats.CtrServeThrottled)
	drop := col.Counter(stats.CtrServeDropped)
	if arr == 0 || done == 0 {
		t.Fatalf("no traffic (arrivals=%d completed=%d)", arr, done)
	}
	if arr != done+thr+drop {
		t.Errorf("pod-wide conservation violated: %d != %d+%d+%d", arr, done, thr, drop)
	}
	// The spanner's two shares merge into one pod-wide histogram.
	spanArr := col.Counter("serve_arrivals[spanner]")
	r0 := pod.Rack(0).Collector().Counter("serve_arrivals[spanner]")
	r1 := pod.Rack(1).Collector().Counter("serve_arrivals[spanner]")
	if r0 == 0 || r1 == 0 || spanArr != r0+r1 {
		t.Errorf("per-rack shares %d+%d must merge to pod-wide %d", r0, r1, spanArr)
	}
	if lat := col.StreamHist("serve_lat[spanner]"); lat.Count() != col.Counter("serve_completed[spanner]") {
		t.Errorf("merged latency samples %d != merged completions %d",
			lat.Count(), col.Counter("serve_completed[spanner]"))
	}
	if col.Counter(stats.CtrCrossRackMsgs) == 0 {
		t.Error("rack 0's faults should have crossed the interconnect")
	}
}

// TestServingMultiRackWorkerInvariance: a multi-rack serving run is
// bit-identical at any worker count.
func TestServingMultiRackWorkerInvariance(t *testing.T) {
	run := func(workers int) (uint64, uint64, int64, sim.Time) {
		pod := servePod(t, 3, 2, workers)
		s, err := NewPodServing(pod, ServeConfig{Horizon: sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		addPodServeTenant(t, pod, s, "a", 0, 0, 512, 20*sim.Microsecond, nil)
		addPodServeTenant(t, pod, s, "b", 1, 0, 64, 30*sim.Microsecond, ctrlplane.NewTokenBucket(50_000, 4))
		addPodServeTenant(t, pod, s, "c", 2, 1, 64, 25*sim.Microsecond, nil)
		end, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		col := pod.Collector()
		return col.Counter(stats.CtrServeCompleted), col.Counter(stats.CtrServeThrottled),
			col.StreamHist("serve_lat[a]").Percentile(99), end
	}
	d1, t1, p1, e1 := run(1)
	for _, workers := range []int{2, 8} {
		d2, t2, p2, e2 := run(workers)
		if d1 != d2 || t1 != t2 || p1 != p2 || e1 != e2 {
			t.Fatalf("workers=%d diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
				workers, d2, t2, p2, e2, d1, t1, p1, e1)
		}
	}
}
