package core

import (
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// fixedGap is a deterministic arrival process for tests: one arrival
// every d of virtual time.
type fixedGap sim.Duration

func (g fixedGap) Next(now sim.Time) sim.Duration { return sim.Duration(g) }

// serveCluster builds a small serving cluster with one tenant process
// and a round-robin op stream over its vma.
func serveCluster(t *testing.T, blades int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(blades, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// roundRobinOps returns an endless op stream striding pages of a vma.
func roundRobinOps(base mem.VA, pages uint64) func() (mem.VA, bool) {
	i := uint64(0)
	return func() (mem.VA, bool) {
		va := base + mem.VA((i%pages)*mem.PageSize)
		i++
		return va, i%4 == 0
	}
}

func addServeTenant(t *testing.T, c *Cluster, s *Serving, name string, blade int, gap sim.Duration, limiter *ctrlplane.TokenBucket) {
	t.Helper()
	p := c.Exec(name)
	vma, err := p.Mmap(64*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	err = s.AddTenant(TenantWorkload{
		Name:    name,
		Proc:    p,
		Blade:   blade,
		Arrival: fixedGap(gap),
		NextOp:  roundRobinOps(vma.Base, 64),
		Limiter: limiter,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServingCompletesAllAdmitted: a tenant below saturation has every
// arrival admitted, served, and latency-accounted.
func TestServingCompletesAllAdmitted(t *testing.T) {
	c := serveCluster(t, 2)
	s := NewServing(c.Rack, ServeConfig{Horizon: 10 * sim.Millisecond})
	addServeTenant(t, c, s, "a", 0, 100*sim.Microsecond, nil)
	s.Run()

	col := c.Collector()
	arr := col.Counter(stats.CtrServeArrivals)
	done := col.Counter(stats.CtrServeCompleted)
	if arr == 0 {
		t.Fatal("no arrivals generated")
	}
	// 10 ms / 100 µs = ~100 arrivals.
	if arr < 90 || arr > 110 {
		t.Errorf("arrivals = %d, want ~100", arr)
	}
	if done != arr {
		t.Errorf("completed %d of %d arrivals (unsaturated tenant must drain fully)", done, arr)
	}
	if col.Counter(stats.CtrServeThrottled) != 0 || col.Counter(stats.CtrServeDropped) != 0 {
		t.Error("no-QoS unsaturated run must not shed requests")
	}
	lat := col.StreamHist("serve_lat[a]")
	if lat.Count() != done {
		t.Errorf("latency samples %d != completed %d", lat.Count(), done)
	}
	if lat.Percentile(99) <= 0 {
		t.Error("p99 must be positive")
	}
}

// TestServingOpenLoopQueueing: past saturation, latency grows with the
// backlog — the open-loop signature a closed-loop workload cannot
// produce — and per-tenant accounting separates the aggressor from the
// compliant tenant.
func TestServingOpenLoopQueueing(t *testing.T) {
	// Saturated: arrivals every 200 ns on one blade whose per-request
	// service (think + fault) is far slower.
	c := serveCluster(t, 1)
	s := NewServing(c.Rack, ServeConfig{Horizon: sim.Millisecond, QueueCap: 1 << 20})
	addServeTenant(t, c, s, "hot", 0, 200*sim.Nanosecond, nil)
	s.Run()
	hotP99 := c.Collector().StreamHist("serve_lat[hot]").Percentile(99)

	// Same workload far below saturation.
	c2 := serveCluster(t, 1)
	s2 := NewServing(c2.Rack, ServeConfig{Horizon: sim.Millisecond, QueueCap: 1 << 20})
	addServeTenant(t, c2, s2, "cool", 0, 50*sim.Microsecond, nil)
	s2.Run()
	coolP99 := c2.Collector().StreamHist("serve_lat[cool]").Percentile(99)

	if hotP99 < 10*coolP99 {
		t.Errorf("saturated p99 %d ns not >> unsaturated p99 %d ns (no queueing collapse)", hotP99, coolP99)
	}
}

// TestServingQoSThrottling: a token bucket sheds an aggressor's excess
// and keeps the shared blade's backlog bounded for the compliant
// tenant.
func TestServingQoSThrottling(t *testing.T) {
	// Both tenants on blade 0; aggressor at 5M req/s, limited to 100k.
	c := serveCluster(t, 1)
	s := NewServing(c.Rack, ServeConfig{Horizon: 2 * sim.Millisecond, QueueCap: 1 << 20})
	addServeTenant(t, c, s, "victim", 0, 100*sim.Microsecond, nil)
	addServeTenant(t, c, s, "aggr", 0, 200*sim.Nanosecond, ctrlplane.NewTokenBucket(100_000, 16))
	s.Run()

	col := c.Collector()
	if col.Counter("serve_throttled[aggr]") == 0 {
		t.Error("aggressor over its contracted rate must be throttled")
	}
	if col.Counter("serve_throttled[victim]") != 0 {
		t.Error("tenant without a limiter must never be throttled")
	}
	aggrArr := col.Counter("serve_arrivals[aggr]")
	aggrDone := col.Counter("serve_completed[aggr]")
	if aggrDone >= aggrArr {
		t.Errorf("aggressor completed %d of %d arrivals; throttling admitted everything", aggrDone, aggrArr)
	}
	if got := col.Counter("serve_completed[victim]"); got == 0 {
		t.Error("victim starved completely")
	}
}

// TestServingQueueCapDrops: a bounded queue sheds load instead of
// growing without limit.
func TestServingQueueCapDrops(t *testing.T) {
	c := serveCluster(t, 1)
	s := NewServing(c.Rack, ServeConfig{Horizon: sim.Millisecond, QueueCap: 8})
	addServeTenant(t, c, s, "a", 0, 200*sim.Nanosecond, nil)
	s.Run()
	col := c.Collector()
	if col.Counter(stats.CtrServeDropped) == 0 {
		t.Error("overloaded bounded queue must drop")
	}
	if arr, done, thr, drop := col.Counter(stats.CtrServeArrivals), col.Counter(stats.CtrServeCompleted),
		col.Counter(stats.CtrServeThrottled), col.Counter(stats.CtrServeDropped); arr != done+thr+drop {
		t.Errorf("conservation violated: %d arrivals != %d completed + %d throttled + %d dropped",
			arr, done, thr, drop)
	}
}

// TestServingDeterministic: identical runs produce identical counters
// and identical percentile bits.
func TestServingDeterministic(t *testing.T) {
	run := func() (uint64, uint64, int64, sim.Time) {
		c := serveCluster(t, 2)
		s := NewServing(c.Rack, ServeConfig{Horizon: 2 * sim.Millisecond})
		addServeTenant(t, c, s, "a", 0, 1*sim.Microsecond, ctrlplane.NewTokenBucket(400_000, 32))
		addServeTenant(t, c, s, "b", 1, 20*sim.Microsecond, nil)
		end := s.Run()
		col := c.Collector()
		return col.Counter(stats.CtrServeCompleted), col.Counter(stats.CtrServeThrottled),
			col.StreamHist("serve_lat[a]").Percentile(99), end
	}
	d1, t1, p1, e1 := run()
	d2, t2, p2, e2 := run()
	if d1 != d2 || t1 != t2 || p1 != p2 || e1 != e2 {
		t.Fatalf("serving run not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			d1, t1, p1, e1, d2, t2, p2, e2)
	}
}

// TestServingRequiresSingleRack pins the 1-rack restriction.
func TestServingRequiresSingleRack(t *testing.T) {
	rc := DefaultConfig(1, 1)
	rc.MemoryBladeCapacity = 1 << 26
	pod, err := NewPod(PodConfig{Racks: []Config{rc, rc}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewServing on a multi-rack pod must panic")
		}
	}()
	NewServing(pod.Rack(0), ServeConfig{Horizon: sim.Millisecond})
}
