package core

import (
	"fmt"

	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// Open-loop multi-tenant serving: arrivals are scheduled as engine
// events from per-tenant arrival processes, independent of service
// completion. A closed-loop Thread issues its next op only when the
// previous one finishes, so its offered load self-throttles at
// saturation; here the arrival chain keeps firing, queues build, and
// tail latency diverges past the knee — the signature that defines
// real serving SLOs. Each compute blade runs one serve worker pulling
// from a FIFO of admitted requests; per-tenant latency (completion
// minus arrival, i.e. queueing + service) streams into a fixed-memory
// stats.StreamHist.
//
// Sharding: a Serving spans its whole pod. All mutable serving state —
// arrival chains, worker FIFOs, request pools, token buckets, latency
// histograms, counters — is owned by a per-rack serveShard and touched
// only from that rack's event context, so a multi-rack serving run
// rides the conservative-lookahead windowed executor (parexec.go)
// unchanged: shards execute their windows concurrently, interact only
// through boundary-buffered interconnect messages (cross-rack faults
// on borrowed blades), and the run's termination condition is read at
// barriers, where every engine is parked. Per-tenant SLO accounting
// across shards is exactly the commutative StreamHist.MergeFrom /
// Collector.MergeFrom path: a tenant spanning racks registers one
// share per rack under the same name, and Pod.Collector() folds the
// shards' histograms and counters into pod-wide totals on read.

// ArrivalProcess mirrors workloads.ArrivalProcess structurally: core
// cannot import workloads (workloads imports core), so the serving
// layer declares the one method it needs and any workloads process
// satisfies it.
type ArrivalProcess interface {
	Next(now sim.Time) sim.Duration
}

// TenantWorkload wires one tenant (or, in a multi-rack pod, one rack's
// share of a tenant) into the serving layer. The home rack is implied
// by Proc: requests are served by compute blade Blade of Proc's rack.
// A tenant spanning racks registers one TenantWorkload per rack under
// the same Name; the per-share Arrival streams must use distinct
// per-(tenant,rack) RNG tags so the event schedule is deterministic,
// and the per-share Limiters carry the tenant's contracted rate split
// by placement share (ctrlplane.PodPlacement.Bucket).
type TenantWorkload struct {
	// Name labels the tenant's stats (serve_lat[Name], per-tenant
	// counters). Shares of one tenant on different racks reuse the
	// Name; Pod.Collector() merges them into pod-wide totals.
	Name string
	// Proc is the tenant's process (owns its protection domain) and
	// pins the share to Proc's rack.
	Proc *Process
	// Blade is the compute blade (within Proc's rack) serving this
	// share's requests.
	Blade int
	// Arrival generates the share's open-loop inter-arrival gaps.
	Arrival ArrivalProcess
	// NextOp yields the share's next (va, write) op — an endless
	// stream (workloads.RequestStream).
	NextOp func() (mem.VA, bool)
	// Limiter, when non-nil, gates admission (QoS throttling): an
	// arrival that cannot take a token is shed and counted, never
	// queued.
	Limiter *ctrlplane.TokenBucket
	// Deadline overrides ServeConfig.Deadline for this tenant share
	// when nonzero (end-to-end request budget).
	Deadline sim.Duration
}

// ServeConfig shapes a serving run.
type ServeConfig struct {
	// Horizon is how long (virtual time, from Run's start) arrivals
	// keep coming. After the horizon the queues drain and the run ends.
	Horizon sim.Duration
	// QueueCap bounds each blade's request queue; an arrival to a full
	// queue is dropped and counted. 0 means 4096.
	QueueCap int

	// Request-robustness layer. All zero values disable every
	// mechanism and keep the event schedule bit-identical to a run
	// without the layer — no timers arm, no RNG draws happen.

	// Deadline is the end-to-end request budget, fixed at admission: a
	// request that has not completed Deadline after its arrival is timed
	// out, and retries spend from the same budget (deadline propagation
	// — a retry of an already-expired request fails at dequeue without
	// touching the blade). The in-service deadline is a pooled engine
	// timer racing the fault chain (a kill's blackout stalls faults in
	// the §4.4 timeout machinery for milliseconds; the timer is what
	// keeps the client's view of the request bounded). 0 disables
	// deadlines.
	Deadline sim.Duration
	// MaxRetries re-admits a timed-out or errored request up to this
	// many times, after exponential backoff, within the request's
	// original deadline.
	MaxRetries int
	// RetryBackoff is the base backoff: attempt k waits
	// RetryBackoff<<(k-1) plus a deterministic jitter in [0,
	// RetryBackoff), clamped to MaxBackoff. 0 with retries enabled
	// defaults to 2us.
	RetryBackoff sim.Duration
	// MaxBackoff clamps the exponential backoff (overflow guard). 0
	// defaults to 64x RetryBackoff.
	MaxBackoff sim.Duration
	// Brownout is the probability that an arrival on a rack currently
	// in recovery blackout (blade-kill re-homing or switch failover in
	// flight) is shed at admission — graceful degradation instead of
	// queue collapse while the rack heals. 0 disables brownout.
	Brownout float64
	// Seed roots the per-shard RNG streams behind retry jitter and
	// brownout coins (tag "serve-robust/r<rack>"); draws happen only in
	// shard event order, so the schedule is deterministic across worker
	// counts.
	Seed uint64
}

// retryBackoff computes attempt's backoff (attempt >= 1): exponential
// from the base with an overflow-proof doubling loop, clamped to max,
// plus a jitter draw in [0, base) from the shard's RNG stream.
func (cfg *ServeConfig) retryBackoff(attempt int, rng *sim.RNG) sim.Duration {
	base := cfg.RetryBackoff
	if base <= 0 {
		base = 2 * sim.Microsecond
	}
	max := cfg.MaxBackoff
	if max <= 0 {
		if base > sim.Duration(1)<<56 {
			max = base
		} else {
			max = base << 6
		}
	}
	d := base
	for i := 1; i < attempt; i++ {
		if d > max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	return d + sim.Duration(rng.Uint64n(uint64(base)))
}

// serveReq is one admitted request; pooled and chained intrusively
// into its blade's FIFO so steady-state serving allocates nothing.
type serveReq struct {
	tenant  *serveTenant
	va      mem.VA
	write   bool
	arrival sim.Time
	next    *serveReq

	// attempt counts re-admissions; deadline is the request's end-to-end
	// expiry, fixed at admission and never refreshed across retries
	// (zero when the tenant has no request budget). arrival stays the
	// original arrival across retries, so a served retry's observed
	// sojourn spans the whole client wait.
	attempt  int
	deadline sim.Time
}

// serveTenant is the runtime state behind one TenantWorkload share.
type serveTenant struct {
	s    *serveShard
	spec TenantWorkload
	pdid mem.PDID

	// Stop generating arrivals past this virtual time.
	deadline sim.Time
	// budget is the end-to-end request deadline (tenant override or
	// ServeConfig.Deadline); 0 means unbounded.
	budget sim.Duration

	lat *stats.StreamHist

	hArrivals  stats.Handle
	hCompleted stats.Handle
	hThrottled stats.Handle
	hDropped   stats.Handle
	hTimedOut  stats.Handle
	hRetried   stats.Handle
	hShed      stats.Handle
	hFailed    stats.Handle
}

// serveWorker drains one blade's FIFO, one request at a time.
type serveWorker struct {
	s     *serveShard
	blade int

	head, tail *serveReq
	qlen       int
	busy       bool

	// cur is the request in service; accessDone is the pre-bound fault
	// completion (one per worker — a worker serves one request at a
	// time, so no per-request closure is needed). curErr carries the
	// access's error into complete.
	cur        *serveReq
	curErr     error
	accessDone func(accessResultAlias)

	// deadEv is the worker's pooled deadline timer (engine.Rearm): it
	// races the in-service fault chain and, firing first, marks the
	// attempt expired. The worker still waits for the access completion
	// — exactly one access per worker is ever outstanding — so a late
	// fault return can never be confused with a newer request's.
	deadEv  *sim.Event
	expired bool
}

// Pre-bound continuations (see thread.go): scheduling these allocates
// neither a closure nor, steady-state, an event.
func serveArrival(x any)    { x.(*serveTenant).arrive() }
func serveWorkerStep(x any) { x.(*serveWorker).step() }
func serveIssue(x any)      { x.(*serveWorker).issue() }
func serveComplete(x any)   { x.(*serveWorker).complete() }
func serveDeadline(x any)   { x.(*serveWorker).expired = true }
func serveRetry(x any)      { req := x.(*serveReq); req.tenant.readmit(req) }

// serveShard owns one rack's slice of a serving run. Every field is
// mutated only from its rack's event context (or, for multi-rack pods,
// read at window barriers where all engines are parked), which is the
// whole determinism argument: a shard's window contents are fixed by
// its own event schedule regardless of how many OS threads execute the
// windows.
type serveShard struct {
	sv *Serving
	c  *Rack

	tenants []*serveTenant
	workers []*serveWorker
	reqFree sim.Pool[serveReq]

	// rng feeds retry jitter and brownout coins; drawn from only in
	// shard event order, so the stream is schedule-deterministic.
	rng *sim.RNG

	hArrivals  stats.Handle
	hCompleted stats.Handle
	hThrottled stats.Handle
	hDropped   stats.Handle
	hTimedOut  stats.Handle
	hRetried   stats.Handle
	hShed      stats.Handle
	hFailed    stats.Handle

	// liveArrivals counts tenant shares whose arrival chain has not
	// passed its deadline; pending counts admitted-but-incomplete
	// requests. lastFinish is the virtual time of the shard's most
	// recent completion or chain close — the pod-wide maximum is the
	// run's finish time.
	liveArrivals int
	pending      int
	lastFinish   sim.Time
}

// outstanding reports the shard's open work. Barrier/rack context only.
func (sh *serveShard) outstanding() int { return sh.liveArrivals + sh.pending }

// Serving runs open-loop tenants over a pod: one serving shard per
// rack, executing inside the pod's lockstep windows. A 1-rack pod
// degenerates to the classic single-engine injector, bit-identical to
// the pre-shard serving layer.
type Serving struct {
	p   *Pod
	cfg ServeConfig

	// shards is index-aligned with the pod's racks.
	shards []*serveShard

	tenants int // total registered shares, across all shards
}

// NewServing attaches a serving layer to the pod that owns rack c —
// the compatibility form of NewPodServing for single-rack callers.
func NewServing(c *Rack, cfg ServeConfig) (*Serving, error) {
	if c == nil {
		return nil, fmt.Errorf("core: serving needs a rack")
	}
	return NewPodServing(c.pod, cfg)
}

// NewPodServing attaches a serving layer to a pod: one shard per rack,
// one serve worker per compute blade. Invalid configurations are
// reported as errors, never panics.
func NewPodServing(p *Pod, cfg ServeConfig) (*Serving, error) {
	if p == nil {
		return nil, fmt.Errorf("core: serving needs a pod")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: serving horizon must be positive (got %v)", cfg.Horizon)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Serving{p: p, cfg: cfg}
	for _, c := range p.racks {
		if len(c.cblades) == 0 {
			return nil, fmt.Errorf("core: serving rack %d has no compute blades", c.idx)
		}
		sh := &serveShard{
			sv:         s,
			c:          c,
			rng:        sim.NewRNG(cfg.Seed, fmt.Sprintf("serve-robust/r%d", c.idx)),
			hArrivals:  c.col.Handle(stats.CtrServeArrivals),
			hCompleted: c.col.Handle(stats.CtrServeCompleted),
			hThrottled: c.col.Handle(stats.CtrServeThrottled),
			hDropped:   c.col.Handle(stats.CtrServeDropped),
			hTimedOut:  c.col.Handle(stats.CtrServeTimedOut),
			hRetried:   c.col.Handle(stats.CtrServeRetried),
			hShed:      c.col.Handle(stats.CtrServeShed),
			hFailed:    c.col.Handle(stats.CtrServeFailed),
		}
		eng := c.eng
		for i := range c.cblades {
			w := &serveWorker{s: sh, blade: i}
			w.accessDone = func(r accessResultAlias) {
				w.curErr = r.Err
				eng.ScheduleArg(0, serveComplete, w)
			}
			sh.workers = append(sh.workers, w)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// AddTenant registers a tenant share on its process's rack. Must be
// called before Run.
func (s *Serving) AddTenant(t TenantWorkload) error {
	if t.Arrival == nil || t.NextOp == nil || t.Proc == nil {
		return fmt.Errorf("core: serving tenant %s: missing arrival/ops/process", t.Name)
	}
	sh := s.shards[t.Proc.Rack().idx]
	if t.Blade < 0 || t.Blade >= len(sh.c.cblades) {
		return fmt.Errorf("core: serving tenant %s: no compute blade %d on rack %d", t.Name, t.Blade, sh.c.idx)
	}
	st := &serveTenant{
		s:          sh,
		spec:       t,
		pdid:       t.Proc.PID(),
		budget:     s.cfg.Deadline,
		lat:        sh.c.col.StreamHist("serve_lat[" + t.Name + "]"),
		hArrivals:  sh.c.col.Handle("serve_arrivals[" + t.Name + "]"),
		hCompleted: sh.c.col.Handle("serve_completed[" + t.Name + "]"),
		hThrottled: sh.c.col.Handle("serve_throttled[" + t.Name + "]"),
		hDropped:   sh.c.col.Handle("serve_dropped[" + t.Name + "]"),
		hTimedOut:  sh.c.col.Handle("serve_timedout[" + t.Name + "]"),
		hRetried:   sh.c.col.Handle("serve_retried[" + t.Name + "]"),
		hShed:      sh.c.col.Handle("serve_shed[" + t.Name + "]"),
		hFailed:    sh.c.col.Handle("serve_failed[" + t.Name + "]"),
	}
	if t.Deadline > 0 {
		st.budget = t.Deadline
	}
	sh.tenants = append(sh.tenants, st)
	s.tenants++
	return nil
}

// Run schedules each tenant share's first arrival on its home shard,
// drives the pod until every arrival chain has passed the horizon and
// every admitted request has completed, then stops the epoch loops and
// drains remaining events. It returns the virtual time the last
// request finished.
//
// A 1-rack pod steps its single shared engine directly — the classic
// serial injector. A multi-rack pod rides the windowed executor:
// shards run their windows (concurrently, when the pod has workers),
// and the termination condition — every shard's outstanding count zero
// — is evaluated only at window barriers, where all engines are parked
// and the happens-before edges of the worker pool make the counter
// reads safe and deterministic.
func (s *Serving) Run() (sim.Time, error) {
	if s.tenants == 0 {
		return s.p.Now(), fmt.Errorf("core: serving run with no tenants")
	}
	start := s.p.Now()
	for _, sh := range s.shards {
		for _, st := range sh.tenants {
			st.deadline = start.Add(s.cfg.Horizon)
			sh.liveArrivals++
			sh.c.eng.ScheduleArg(st.spec.Arrival.Next(start), serveArrival, st)
		}
	}

	if !s.p.multiRack {
		sh := s.shards[0]
		for sh.outstanding() > 0 {
			if !sh.c.eng.Step() {
				return 0, fmt.Errorf("core: serving pending but no events (wedged)")
			}
		}
		finishedAt := sh.c.eng.Now()
		sh.c.StopEpochs()
		s.p.StopPromotionEpochs()
		sh.c.eng.Run()
		return finishedAt, nil
	}

	x := s.p.exec
	x.drive(true, 0, func() bool {
		for _, sh := range s.shards {
			if sh.outstanding() > 0 {
				return false
			}
		}
		return true
	})
	finishedAt := sim.Time(0)
	for _, sh := range s.shards {
		if sh.lastFinish > finishedAt {
			finishedAt = sh.lastFinish
		}
	}
	for _, r := range s.p.racks {
		r.StopEpochs()
	}
	s.p.StopPromotionEpochs()
	x.drive(true, 0, x.idle)
	return finishedAt, nil
}

// arrive processes one arrival: chain the next arrival first (the
// open-loop property — the successor is scheduled whether or not this
// request is even admitted), then run admission and enqueue.
func (st *serveTenant) arrive() {
	s := st.s
	now := s.c.eng.Now()

	// Chain the successor while the horizon is open; closing the chain
	// is what lets Run's drain loop terminate.
	if next := now.Add(st.spec.Arrival.Next(now)); next <= st.deadline {
		s.c.eng.ScheduleArg(sim.Duration(next-now), serveArrival, st)
	} else {
		s.liveArrivals--
		if now > s.lastFinish {
			s.lastFinish = now
		}
	}

	s.c.col.IncH(s.hArrivals, 1)
	s.c.col.IncH(st.hArrivals, 1)

	// Brownout admission: while the rack is in recovery blackout (a
	// blade kill's re-homing or a switch failover in flight), shed a
	// fraction of arrivals instead of letting queues collapse onto the
	// degraded data plane. The coin is a shard-RNG draw in event order,
	// so the shed set is deterministic.
	if s.sv.cfg.Brownout > 0 && s.c.recovering > 0 && s.rng.Bool(s.sv.cfg.Brownout) {
		s.c.col.IncH(s.hShed, 1)
		s.c.col.IncH(st.hShed, 1)
		return
	}

	// QoS admission: over-rate arrivals are shed, not queued — the
	// whole point is that an aggressor's excess never occupies the
	// blade the compliant tenants share.
	if st.spec.Limiter != nil && !st.spec.Limiter.Take(now) {
		s.c.col.IncH(s.hThrottled, 1)
		s.c.col.IncH(st.hThrottled, 1)
		return
	}

	w := s.workers[st.spec.Blade]
	if w.qlen >= s.sv.cfg.QueueCap {
		s.c.col.IncH(s.hDropped, 1)
		s.c.col.IncH(st.hDropped, 1)
		return
	}

	req := s.reqFree.Get()
	if req == nil {
		req = &serveReq{}
	}
	req.tenant = st
	req.va, req.write = st.spec.NextOp()
	req.arrival = now
	req.attempt = 0
	req.deadline = 0
	if st.budget > 0 {
		req.deadline = now.Add(st.budget)
	}
	req.next = nil
	if w.tail != nil {
		w.tail.next = req
	} else {
		w.head = req
	}
	w.tail = req
	w.qlen++
	s.pending++
	if !w.busy {
		w.busy = true
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
	}
}

// step pulls the next request and starts its service: think time
// accrues first, then the access is issued (inline for a cache hit,
// as a fault round trip otherwise). An attempt whose deadline already
// passed while queued never reaches the blade — it times out at
// dequeue, and the worker moves straight to the next request.
func (w *serveWorker) step() {
	s := w.s
	for {
		req := w.head
		if req == nil {
			w.busy = false
			return
		}
		w.head = req.next
		if w.head == nil {
			w.tail = nil
		}
		req.next = nil
		w.qlen--

		now := s.c.eng.Now()
		if req.deadline != 0 && now >= req.deadline {
			req.tenant.failAttempt(req, true)
			continue
		}
		w.cur = req
		w.curErr = nil
		w.expired = false
		if req.deadline != 0 {
			w.deadEv = s.c.eng.Rearm(w.deadEv, sim.Duration(req.deadline-now), serveDeadline, w)
		}

		blade := s.c.cblades[w.blade]
		local := s.c.cfg.ThinkTime
		if blade.WouldHit(req.va, req.write) {
			blade.Access(req.tenant.pdid, req.va, req.write, nil)
			s.c.eng.ScheduleArg(local+computeblade.HitLatency, serveComplete, w)
			return
		}
		s.c.eng.ScheduleArg(local, serveIssue, w)
		return
	}
}

// issue starts the blocking fault for the request in service. On a
// memory-poor rack the faulted page may live on a borrowed blade: the
// fetch round trip then crosses the pod interconnect (memRound), which
// is how a serving shard exercises cross-rack traffic without ever
// touching another shard's state directly.
func (w *serveWorker) issue() {
	req := w.cur
	blade := w.s.c.cblades[w.blade]
	hit := blade.Access(req.tenant.pdid, req.va, req.write, w.accessDone)
	if hit {
		// Raced with a concurrent fault that installed the page.
		w.s.c.eng.ScheduleArg(0, serveComplete, w)
	}
}

// complete finishes the request in service. The worker always waits
// for the access completion (the §4.4 timeout/retransmit/reset
// machinery bounds every access, even to a dead blade), then settles
// the attempt: expired or errored attempts go to failAttempt; a clean
// completion observes its sojourn time (queueing + service, from the
// original arrival — a served retry's latency spans the whole client
// wait) into the tenant's streaming histogram and recycles the
// request. Either way the worker continues with its queue.
func (w *serveWorker) complete() {
	s := w.s
	req := w.cur
	w.cur = nil
	st := req.tenant
	s.c.eng.Cancel(w.deadEv)

	switch {
	case w.expired:
		st.failAttempt(req, true)
	case w.curErr != nil:
		st.failAttempt(req, false)
	default:
		now := s.c.eng.Now()
		st.lat.Observe(int64(now - req.arrival))
		s.c.col.IncH(s.hCompleted, 1)
		s.c.col.IncH(st.hCompleted, 1)
		s.pending--
		if now > s.lastFinish {
			s.lastFinish = now
		}
		req.tenant = nil
		s.reqFree.Put(req)
	}
	w.curErr = nil
	w.expired = false

	if w.head != nil {
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
		return
	}
	w.busy = false
}

// failAttempt settles one failed attempt. timedOut distinguishes a
// deadline expiry from an access error (the VA was lost in a blade
// kill). With retry budget left the request is re-admitted after
// exponential backoff; otherwise its fate is terminal — timed-out or
// failed — and the shard's pending count finally drops.
func (st *serveTenant) failAttempt(req *serveReq, timedOut bool) {
	s := st.s
	if req.attempt < s.sv.cfg.MaxRetries {
		req.attempt++
		s.c.col.IncH(s.hRetried, 1)
		s.c.col.IncH(st.hRetried, 1)
		s.c.eng.ScheduleArg(s.sv.cfg.retryBackoff(req.attempt, s.rng), serveRetry, req)
		return
	}
	now := s.c.eng.Now()
	if timedOut {
		s.c.col.IncH(s.hTimedOut, 1)
		s.c.col.IncH(st.hTimedOut, 1)
	} else {
		s.c.col.IncH(s.hFailed, 1)
		s.c.col.IncH(st.hFailed, 1)
	}
	s.pending--
	if now > s.lastFinish {
		s.lastFinish = now
	}
	req.tenant = nil
	s.reqFree.Put(req)
}

// readmit re-enqueues a retried request on its blade. The deadline is
// NOT refreshed: it is the request's end-to-end budget, fixed at
// admission, and retries spend from it (deadline propagation). A full
// queue at readmission is a terminal drop — the same fate an arrival
// would have met.
func (st *serveTenant) readmit(req *serveReq) {
	s := st.s
	now := s.c.eng.Now()
	w := s.workers[st.spec.Blade]
	if w.qlen >= s.sv.cfg.QueueCap {
		s.c.col.IncH(s.hDropped, 1)
		s.c.col.IncH(st.hDropped, 1)
		s.pending--
		if now > s.lastFinish {
			s.lastFinish = now
		}
		req.tenant = nil
		s.reqFree.Put(req)
		return
	}
	req.next = nil
	if w.tail != nil {
		w.tail.next = req
	} else {
		w.head = req
	}
	w.tail = req
	w.qlen++
	if !w.busy {
		w.busy = true
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
	}
}
