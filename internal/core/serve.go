package core

import (
	"fmt"

	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// Open-loop multi-tenant serving: arrivals are scheduled as engine
// events from per-tenant arrival processes, independent of service
// completion. A closed-loop Thread issues its next op only when the
// previous one finishes, so its offered load self-throttles at
// saturation; here the arrival chain keeps firing, queues build, and
// tail latency diverges past the knee — the signature that defines
// real serving SLOs. Each compute blade runs one serve worker pulling
// from a FIFO of admitted requests; per-tenant latency (completion
// minus arrival, i.e. queueing + service) streams into a fixed-memory
// stats.StreamHist.

// ArrivalProcess mirrors workloads.ArrivalProcess structurally: core
// cannot import workloads (workloads imports core), so the serving
// layer declares the one method it needs and any workloads process
// satisfies it.
type ArrivalProcess interface {
	Next(now sim.Time) sim.Duration
}

// TenantWorkload wires one tenant into the serving layer.
type TenantWorkload struct {
	// Name labels the tenant's stats (serve_lat[Name], per-tenant
	// counters).
	Name string
	// Proc is the tenant's process (owns its protection domain).
	Proc *Process
	// Blade is the compute blade serving this tenant's requests.
	Blade int
	// Arrival generates the tenant's open-loop inter-arrival gaps.
	Arrival ArrivalProcess
	// NextOp yields the tenant's next (va, write) op — an endless
	// stream (workloads.RequestStream).
	NextOp func() (mem.VA, bool)
	// Limiter, when non-nil, gates admission (QoS throttling): an
	// arrival that cannot take a token is shed and counted, never
	// queued.
	Limiter *ctrlplane.TokenBucket
}

// ServeConfig shapes a serving run.
type ServeConfig struct {
	// Horizon is how long (virtual time, from Run's start) arrivals
	// keep coming. After the horizon the queues drain and the run ends.
	Horizon sim.Duration
	// QueueCap bounds each blade's request queue; an arrival to a full
	// queue is dropped and counted. 0 means 4096.
	QueueCap int
}

// serveReq is one admitted request; pooled and chained intrusively
// into its blade's FIFO so steady-state serving allocates nothing.
type serveReq struct {
	tenant  *serveTenant
	va      mem.VA
	write   bool
	arrival sim.Time
	next    *serveReq
}

// serveTenant is the runtime state behind one TenantWorkload.
type serveTenant struct {
	s    *Serving
	spec TenantWorkload
	pdid mem.PDID

	// Stop generating arrivals past this virtual time.
	deadline sim.Time

	lat *stats.StreamHist

	hArrivals  stats.Handle
	hCompleted stats.Handle
	hThrottled stats.Handle
	hDropped   stats.Handle
}

// serveWorker drains one blade's FIFO, one request at a time.
type serveWorker struct {
	s     *Serving
	blade int

	head, tail *serveReq
	qlen       int
	busy       bool

	// cur is the request in service; accessDone is the pre-bound fault
	// completion (one per worker — a worker serves one request at a
	// time, so no per-request closure is needed).
	cur        *serveReq
	accessDone func(accessResultAlias)
}

// Pre-bound continuations (see thread.go): scheduling these allocates
// neither a closure nor, steady-state, an event.
func serveArrival(x any)    { x.(*serveTenant).arrive() }
func serveWorkerStep(x any) { x.(*serveWorker).step() }
func serveIssue(x any)      { x.(*serveWorker).issue() }
func serveComplete(x any)   { x.(*serveWorker).complete() }

// Serving runs open-loop tenants over one rack. It requires a 1-rack
// pod: serving shares the rack's engine and collector directly, and
// per-tenant SLO accounting across rack shards is exactly the merge
// path the streaming histograms exist for — but the arrival chains
// themselves are rack-local state.
type Serving struct {
	c   *Rack
	cfg ServeConfig

	tenants []*serveTenant
	workers []*serveWorker
	reqFree sim.Pool[serveReq]

	hArrivals  stats.Handle
	hCompleted stats.Handle
	hThrottled stats.Handle
	hDropped   stats.Handle

	// liveArrivals counts tenants whose arrival chain has not passed
	// its deadline; pending counts admitted-but-incomplete requests.
	liveArrivals int
	pending      int
}

// NewServing attaches a serving layer to a rack.
func NewServing(c *Rack, cfg ServeConfig) *Serving {
	if c.pod.multiRack {
		panic("core: serving requires a 1-rack pod")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Serving{
		c:          c,
		cfg:        cfg,
		hArrivals:  c.col.Handle(stats.CtrServeArrivals),
		hCompleted: c.col.Handle(stats.CtrServeCompleted),
		hThrottled: c.col.Handle(stats.CtrServeThrottled),
		hDropped:   c.col.Handle(stats.CtrServeDropped),
	}
	for i := range c.cblades {
		w := &serveWorker{s: s, blade: i}
		w.accessDone = func(accessResultAlias) {
			c.eng.ScheduleArg(0, serveComplete, w)
		}
		s.workers = append(s.workers, w)
	}
	return s
}

// AddTenant registers a tenant. Must be called before Run.
func (s *Serving) AddTenant(t TenantWorkload) error {
	if t.Blade < 0 || t.Blade >= len(s.c.cblades) {
		return fmt.Errorf("core: serving tenant %s: no compute blade %d", t.Name, t.Blade)
	}
	if t.Arrival == nil || t.NextOp == nil || t.Proc == nil {
		return fmt.Errorf("core: serving tenant %s: missing arrival/ops/process", t.Name)
	}
	st := &serveTenant{
		s:          s,
		spec:       t,
		pdid:       t.Proc.PID(),
		lat:        s.c.col.StreamHist("serve_lat[" + t.Name + "]"),
		hArrivals:  s.c.col.Handle("serve_arrivals[" + t.Name + "]"),
		hCompleted: s.c.col.Handle("serve_completed[" + t.Name + "]"),
		hThrottled: s.c.col.Handle("serve_throttled[" + t.Name + "]"),
		hDropped:   s.c.col.Handle("serve_dropped[" + t.Name + "]"),
	}
	s.tenants = append(s.tenants, st)
	return nil
}

// Run schedules each tenant's first arrival, drives the engine until
// every arrival chain has passed the horizon and every admitted
// request has completed, then stops the rack's epoch loops and drains
// remaining events. It returns the virtual time the last request
// finished.
func (s *Serving) Run() sim.Time {
	if len(s.tenants) == 0 {
		return s.c.eng.Now()
	}
	start := s.c.eng.Now()
	for _, st := range s.tenants {
		st.deadline = start.Add(s.cfg.Horizon)
		s.liveArrivals++
		s.c.eng.ScheduleArg(st.spec.Arrival.Next(start), serveArrival, st)
	}
	for s.liveArrivals > 0 || s.pending > 0 {
		if !s.c.eng.Step() {
			panic("core: serving pending but no events (wedged)")
		}
	}
	finishedAt := s.c.eng.Now()
	s.c.StopEpochs()
	s.c.pod.StopPromotionEpochs()
	s.c.eng.Run()
	return finishedAt
}

// arrive processes one arrival: chain the next arrival first (the
// open-loop property — the successor is scheduled whether or not this
// request is even admitted), then run admission and enqueue.
func (st *serveTenant) arrive() {
	s := st.s
	now := s.c.eng.Now()

	// Chain the successor while the horizon is open; closing the chain
	// is what lets Run's drain loop terminate.
	if next := now.Add(st.spec.Arrival.Next(now)); next <= st.deadline {
		s.c.eng.ScheduleArg(sim.Duration(next-now), serveArrival, st)
	} else {
		s.liveArrivals--
	}

	s.c.col.IncH(s.hArrivals, 1)
	s.c.col.IncH(st.hArrivals, 1)

	// QoS admission: over-rate arrivals are shed, not queued — the
	// whole point is that an aggressor's excess never occupies the
	// blade the compliant tenants share.
	if st.spec.Limiter != nil && !st.spec.Limiter.Take(now) {
		s.c.col.IncH(s.hThrottled, 1)
		s.c.col.IncH(st.hThrottled, 1)
		return
	}

	w := s.workers[st.spec.Blade]
	if w.qlen >= s.cfg.QueueCap {
		s.c.col.IncH(s.hDropped, 1)
		s.c.col.IncH(st.hDropped, 1)
		return
	}

	req := s.reqFree.Get()
	if req == nil {
		req = &serveReq{}
	}
	req.tenant = st
	req.va, req.write = st.spec.NextOp()
	req.arrival = now
	req.next = nil
	if w.tail != nil {
		w.tail.next = req
	} else {
		w.head = req
	}
	w.tail = req
	w.qlen++
	s.pending++
	if !w.busy {
		w.busy = true
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
	}
}

// step pulls the next request and starts its service: think time
// accrues first, then the access is issued (inline for a cache hit,
// as a fault round trip otherwise).
func (w *serveWorker) step() {
	req := w.head
	if req == nil {
		w.busy = false
		return
	}
	w.head = req.next
	if w.head == nil {
		w.tail = nil
	}
	req.next = nil
	w.qlen--
	w.cur = req

	blade := w.s.c.cblades[w.blade]
	local := w.s.c.cfg.ThinkTime
	if blade.WouldHit(req.va, req.write) {
		blade.Access(req.tenant.pdid, req.va, req.write, nil)
		w.s.c.eng.ScheduleArg(local+computeblade.HitLatency, serveComplete, w)
		return
	}
	w.s.c.eng.ScheduleArg(local, serveIssue, w)
}

// issue starts the blocking fault for the request in service.
func (w *serveWorker) issue() {
	req := w.cur
	blade := w.s.c.cblades[w.blade]
	hit := blade.Access(req.tenant.pdid, req.va, req.write, w.accessDone)
	if hit {
		// Raced with a concurrent fault that installed the page.
		w.s.c.eng.ScheduleArg(0, serveComplete, w)
	}
}

// complete finishes the request in service: observe its sojourn time
// (queueing + service) into the tenant's streaming histogram, recycle
// the request, and continue with the queue.
func (w *serveWorker) complete() {
	s := w.s
	req := w.cur
	w.cur = nil
	st := req.tenant

	st.lat.Observe(int64(s.c.eng.Now() - req.arrival))
	s.c.col.IncH(s.hCompleted, 1)
	s.c.col.IncH(st.hCompleted, 1)
	s.pending--

	req.tenant = nil
	s.reqFree.Put(req)

	if w.head != nil {
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
		return
	}
	w.busy = false
}
