package core

import (
	"fmt"

	"mind/internal/computeblade"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// Open-loop multi-tenant serving: arrivals are scheduled as engine
// events from per-tenant arrival processes, independent of service
// completion. A closed-loop Thread issues its next op only when the
// previous one finishes, so its offered load self-throttles at
// saturation; here the arrival chain keeps firing, queues build, and
// tail latency diverges past the knee — the signature that defines
// real serving SLOs. Each compute blade runs one serve worker pulling
// from a FIFO of admitted requests; per-tenant latency (completion
// minus arrival, i.e. queueing + service) streams into a fixed-memory
// stats.StreamHist.
//
// Sharding: a Serving spans its whole pod. All mutable serving state —
// arrival chains, worker FIFOs, request pools, token buckets, latency
// histograms, counters — is owned by a per-rack serveShard and touched
// only from that rack's event context, so a multi-rack serving run
// rides the conservative-lookahead windowed executor (parexec.go)
// unchanged: shards execute their windows concurrently, interact only
// through boundary-buffered interconnect messages (cross-rack faults
// on borrowed blades), and the run's termination condition is read at
// barriers, where every engine is parked. Per-tenant SLO accounting
// across shards is exactly the commutative StreamHist.MergeFrom /
// Collector.MergeFrom path: a tenant spanning racks registers one
// share per rack under the same name, and Pod.Collector() folds the
// shards' histograms and counters into pod-wide totals on read.

// ArrivalProcess mirrors workloads.ArrivalProcess structurally: core
// cannot import workloads (workloads imports core), so the serving
// layer declares the one method it needs and any workloads process
// satisfies it.
type ArrivalProcess interface {
	Next(now sim.Time) sim.Duration
}

// TenantWorkload wires one tenant (or, in a multi-rack pod, one rack's
// share of a tenant) into the serving layer. The home rack is implied
// by Proc: requests are served by compute blade Blade of Proc's rack.
// A tenant spanning racks registers one TenantWorkload per rack under
// the same Name; the per-share Arrival streams must use distinct
// per-(tenant,rack) RNG tags so the event schedule is deterministic,
// and the per-share Limiters carry the tenant's contracted rate split
// by placement share (ctrlplane.PodPlacement.Bucket).
type TenantWorkload struct {
	// Name labels the tenant's stats (serve_lat[Name], per-tenant
	// counters). Shares of one tenant on different racks reuse the
	// Name; Pod.Collector() merges them into pod-wide totals.
	Name string
	// Proc is the tenant's process (owns its protection domain) and
	// pins the share to Proc's rack.
	Proc *Process
	// Blade is the compute blade (within Proc's rack) serving this
	// share's requests.
	Blade int
	// Arrival generates the share's open-loop inter-arrival gaps.
	Arrival ArrivalProcess
	// NextOp yields the share's next (va, write) op — an endless
	// stream (workloads.RequestStream).
	NextOp func() (mem.VA, bool)
	// Limiter, when non-nil, gates admission (QoS throttling): an
	// arrival that cannot take a token is shed and counted, never
	// queued.
	Limiter *ctrlplane.TokenBucket
}

// ServeConfig shapes a serving run.
type ServeConfig struct {
	// Horizon is how long (virtual time, from Run's start) arrivals
	// keep coming. After the horizon the queues drain and the run ends.
	Horizon sim.Duration
	// QueueCap bounds each blade's request queue; an arrival to a full
	// queue is dropped and counted. 0 means 4096.
	QueueCap int
}

// serveReq is one admitted request; pooled and chained intrusively
// into its blade's FIFO so steady-state serving allocates nothing.
type serveReq struct {
	tenant  *serveTenant
	va      mem.VA
	write   bool
	arrival sim.Time
	next    *serveReq
}

// serveTenant is the runtime state behind one TenantWorkload share.
type serveTenant struct {
	s    *serveShard
	spec TenantWorkload
	pdid mem.PDID

	// Stop generating arrivals past this virtual time.
	deadline sim.Time

	lat *stats.StreamHist

	hArrivals  stats.Handle
	hCompleted stats.Handle
	hThrottled stats.Handle
	hDropped   stats.Handle
}

// serveWorker drains one blade's FIFO, one request at a time.
type serveWorker struct {
	s     *serveShard
	blade int

	head, tail *serveReq
	qlen       int
	busy       bool

	// cur is the request in service; accessDone is the pre-bound fault
	// completion (one per worker — a worker serves one request at a
	// time, so no per-request closure is needed).
	cur        *serveReq
	accessDone func(accessResultAlias)
}

// Pre-bound continuations (see thread.go): scheduling these allocates
// neither a closure nor, steady-state, an event.
func serveArrival(x any)    { x.(*serveTenant).arrive() }
func serveWorkerStep(x any) { x.(*serveWorker).step() }
func serveIssue(x any)      { x.(*serveWorker).issue() }
func serveComplete(x any)   { x.(*serveWorker).complete() }

// serveShard owns one rack's slice of a serving run. Every field is
// mutated only from its rack's event context (or, for multi-rack pods,
// read at window barriers where all engines are parked), which is the
// whole determinism argument: a shard's window contents are fixed by
// its own event schedule regardless of how many OS threads execute the
// windows.
type serveShard struct {
	sv *Serving
	c  *Rack

	tenants []*serveTenant
	workers []*serveWorker
	reqFree sim.Pool[serveReq]

	hArrivals  stats.Handle
	hCompleted stats.Handle
	hThrottled stats.Handle
	hDropped   stats.Handle

	// liveArrivals counts tenant shares whose arrival chain has not
	// passed its deadline; pending counts admitted-but-incomplete
	// requests. lastFinish is the virtual time of the shard's most
	// recent completion or chain close — the pod-wide maximum is the
	// run's finish time.
	liveArrivals int
	pending      int
	lastFinish   sim.Time
}

// outstanding reports the shard's open work. Barrier/rack context only.
func (sh *serveShard) outstanding() int { return sh.liveArrivals + sh.pending }

// Serving runs open-loop tenants over a pod: one serving shard per
// rack, executing inside the pod's lockstep windows. A 1-rack pod
// degenerates to the classic single-engine injector, bit-identical to
// the pre-shard serving layer.
type Serving struct {
	p   *Pod
	cfg ServeConfig

	// shards is index-aligned with the pod's racks.
	shards []*serveShard

	tenants int // total registered shares, across all shards
}

// NewServing attaches a serving layer to the pod that owns rack c —
// the compatibility form of NewPodServing for single-rack callers.
func NewServing(c *Rack, cfg ServeConfig) (*Serving, error) {
	if c == nil {
		return nil, fmt.Errorf("core: serving needs a rack")
	}
	return NewPodServing(c.pod, cfg)
}

// NewPodServing attaches a serving layer to a pod: one shard per rack,
// one serve worker per compute blade. Invalid configurations are
// reported as errors, never panics.
func NewPodServing(p *Pod, cfg ServeConfig) (*Serving, error) {
	if p == nil {
		return nil, fmt.Errorf("core: serving needs a pod")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: serving horizon must be positive (got %v)", cfg.Horizon)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Serving{p: p, cfg: cfg}
	for _, c := range p.racks {
		if len(c.cblades) == 0 {
			return nil, fmt.Errorf("core: serving rack %d has no compute blades", c.idx)
		}
		sh := &serveShard{
			sv:         s,
			c:          c,
			hArrivals:  c.col.Handle(stats.CtrServeArrivals),
			hCompleted: c.col.Handle(stats.CtrServeCompleted),
			hThrottled: c.col.Handle(stats.CtrServeThrottled),
			hDropped:   c.col.Handle(stats.CtrServeDropped),
		}
		eng := c.eng
		for i := range c.cblades {
			w := &serveWorker{s: sh, blade: i}
			w.accessDone = func(accessResultAlias) {
				eng.ScheduleArg(0, serveComplete, w)
			}
			sh.workers = append(sh.workers, w)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// AddTenant registers a tenant share on its process's rack. Must be
// called before Run.
func (s *Serving) AddTenant(t TenantWorkload) error {
	if t.Arrival == nil || t.NextOp == nil || t.Proc == nil {
		return fmt.Errorf("core: serving tenant %s: missing arrival/ops/process", t.Name)
	}
	sh := s.shards[t.Proc.Rack().idx]
	if t.Blade < 0 || t.Blade >= len(sh.c.cblades) {
		return fmt.Errorf("core: serving tenant %s: no compute blade %d on rack %d", t.Name, t.Blade, sh.c.idx)
	}
	st := &serveTenant{
		s:          sh,
		spec:       t,
		pdid:       t.Proc.PID(),
		lat:        sh.c.col.StreamHist("serve_lat[" + t.Name + "]"),
		hArrivals:  sh.c.col.Handle("serve_arrivals[" + t.Name + "]"),
		hCompleted: sh.c.col.Handle("serve_completed[" + t.Name + "]"),
		hThrottled: sh.c.col.Handle("serve_throttled[" + t.Name + "]"),
		hDropped:   sh.c.col.Handle("serve_dropped[" + t.Name + "]"),
	}
	sh.tenants = append(sh.tenants, st)
	s.tenants++
	return nil
}

// Run schedules each tenant share's first arrival on its home shard,
// drives the pod until every arrival chain has passed the horizon and
// every admitted request has completed, then stops the epoch loops and
// drains remaining events. It returns the virtual time the last
// request finished.
//
// A 1-rack pod steps its single shared engine directly — the classic
// serial injector. A multi-rack pod rides the windowed executor:
// shards run their windows (concurrently, when the pod has workers),
// and the termination condition — every shard's outstanding count zero
// — is evaluated only at window barriers, where all engines are parked
// and the happens-before edges of the worker pool make the counter
// reads safe and deterministic.
func (s *Serving) Run() (sim.Time, error) {
	if s.tenants == 0 {
		return s.p.Now(), fmt.Errorf("core: serving run with no tenants")
	}
	start := s.p.Now()
	for _, sh := range s.shards {
		for _, st := range sh.tenants {
			st.deadline = start.Add(s.cfg.Horizon)
			sh.liveArrivals++
			sh.c.eng.ScheduleArg(st.spec.Arrival.Next(start), serveArrival, st)
		}
	}

	if !s.p.multiRack {
		sh := s.shards[0]
		for sh.outstanding() > 0 {
			if !sh.c.eng.Step() {
				return 0, fmt.Errorf("core: serving pending but no events (wedged)")
			}
		}
		finishedAt := sh.c.eng.Now()
		sh.c.StopEpochs()
		s.p.StopPromotionEpochs()
		sh.c.eng.Run()
		return finishedAt, nil
	}

	x := s.p.exec
	x.drive(true, 0, func() bool {
		for _, sh := range s.shards {
			if sh.outstanding() > 0 {
				return false
			}
		}
		return true
	})
	finishedAt := sim.Time(0)
	for _, sh := range s.shards {
		if sh.lastFinish > finishedAt {
			finishedAt = sh.lastFinish
		}
	}
	for _, r := range s.p.racks {
		r.StopEpochs()
	}
	s.p.StopPromotionEpochs()
	x.drive(true, 0, x.idle)
	return finishedAt, nil
}

// arrive processes one arrival: chain the next arrival first (the
// open-loop property — the successor is scheduled whether or not this
// request is even admitted), then run admission and enqueue.
func (st *serveTenant) arrive() {
	s := st.s
	now := s.c.eng.Now()

	// Chain the successor while the horizon is open; closing the chain
	// is what lets Run's drain loop terminate.
	if next := now.Add(st.spec.Arrival.Next(now)); next <= st.deadline {
		s.c.eng.ScheduleArg(sim.Duration(next-now), serveArrival, st)
	} else {
		s.liveArrivals--
		if now > s.lastFinish {
			s.lastFinish = now
		}
	}

	s.c.col.IncH(s.hArrivals, 1)
	s.c.col.IncH(st.hArrivals, 1)

	// QoS admission: over-rate arrivals are shed, not queued — the
	// whole point is that an aggressor's excess never occupies the
	// blade the compliant tenants share.
	if st.spec.Limiter != nil && !st.spec.Limiter.Take(now) {
		s.c.col.IncH(s.hThrottled, 1)
		s.c.col.IncH(st.hThrottled, 1)
		return
	}

	w := s.workers[st.spec.Blade]
	if w.qlen >= s.sv.cfg.QueueCap {
		s.c.col.IncH(s.hDropped, 1)
		s.c.col.IncH(st.hDropped, 1)
		return
	}

	req := s.reqFree.Get()
	if req == nil {
		req = &serveReq{}
	}
	req.tenant = st
	req.va, req.write = st.spec.NextOp()
	req.arrival = now
	req.next = nil
	if w.tail != nil {
		w.tail.next = req
	} else {
		w.head = req
	}
	w.tail = req
	w.qlen++
	s.pending++
	if !w.busy {
		w.busy = true
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
	}
}

// step pulls the next request and starts its service: think time
// accrues first, then the access is issued (inline for a cache hit,
// as a fault round trip otherwise).
func (w *serveWorker) step() {
	req := w.head
	if req == nil {
		w.busy = false
		return
	}
	w.head = req.next
	if w.head == nil {
		w.tail = nil
	}
	req.next = nil
	w.qlen--
	w.cur = req

	blade := w.s.c.cblades[w.blade]
	local := w.s.c.cfg.ThinkTime
	if blade.WouldHit(req.va, req.write) {
		blade.Access(req.tenant.pdid, req.va, req.write, nil)
		w.s.c.eng.ScheduleArg(local+computeblade.HitLatency, serveComplete, w)
		return
	}
	w.s.c.eng.ScheduleArg(local, serveIssue, w)
}

// issue starts the blocking fault for the request in service. On a
// memory-poor rack the faulted page may live on a borrowed blade: the
// fetch round trip then crosses the pod interconnect (memRound), which
// is how a serving shard exercises cross-rack traffic without ever
// touching another shard's state directly.
func (w *serveWorker) issue() {
	req := w.cur
	blade := w.s.c.cblades[w.blade]
	hit := blade.Access(req.tenant.pdid, req.va, req.write, w.accessDone)
	if hit {
		// Raced with a concurrent fault that installed the page.
		w.s.c.eng.ScheduleArg(0, serveComplete, w)
	}
}

// complete finishes the request in service: observe its sojourn time
// (queueing + service) into the tenant's streaming histogram, recycle
// the request, and continue with the queue.
func (w *serveWorker) complete() {
	s := w.s
	req := w.cur
	w.cur = nil
	st := req.tenant

	now := s.c.eng.Now()
	st.lat.Observe(int64(now - req.arrival))
	s.c.col.IncH(s.hCompleted, 1)
	s.c.col.IncH(st.hCompleted, 1)
	s.pending--
	if now > s.lastFinish {
		s.lastFinish = now
	}

	req.tenant = nil
	s.reqFree.Put(req)

	if w.head != nil {
		s.c.eng.ScheduleArg(0, serveWorkerStep, w)
		return
	}
	w.busy = false
}
