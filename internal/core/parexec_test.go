package core

import (
	"fmt"
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

// equivRun drives one randomized multi-rack workload — borrow on the
// memory-poor rack 0, promotion churn, cross-rack fault traffic — and
// returns everything that must be invariant across worker counts: the
// finish time, each engine's executed-event count and dispatch-trace
// hash, and the merged counter snapshot.
func equivRun(t *testing.T, racks, workers int, window sim.Duration, dense bool) (sim.Time, []uint64, []uint64, map[string]uint64) {
	t.Helper()
	cfgs := make([]Config, racks)
	cfgs[0] = podRackConfig(2, 1, 1024)
	for i := 1; i < racks; i++ {
		cfgs[i] = podRackConfig(2, 3, 1024)
	}
	pod, err := NewPod(PodConfig{
		Racks:        cfgs,
		Promotion:    PromotionConfig{Epoch: 200 * sim.Microsecond, Threshold: 4},
		Workers:      workers,
		Window:       window,
		DenseWindows: dense,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < racks; i++ {
		pod.Rack(i).Engine().EnableDispatchHash()
	}
	for ri := 0; ri < racks; ri++ {
		r := pod.Rack(ri)
		p := r.Exec("equiv")
		var vma mem.VMA
		if ri == 0 {
			// Fill the only local blade, borrow for the working set,
			// then free local capacity so mid-run promotion (and the
			// eventual lease return) really happen.
			filler, err := p.Mmap(900*mem.PageSize, mem.PermReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			vma, err = p.Mmap(400*mem.PageSize, mem.PermReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			if r.BorrowedBlades() == 0 {
				t.Fatal("setup: rack 0 did not borrow")
			}
			if err := p.Munmap(filler.Base); err != nil {
				t.Fatal(err)
			}
		} else {
			var err error
			vma, err = p.Mmap(600*mem.PageSize, mem.PermReadWrite)
			if err != nil {
				t.Fatal(err)
			}
		}
		pages := vma.Len / mem.PageSize
		for b := 0; b < 2; b++ {
			th, err := p.SpawnThread(b)
			if err != nil {
				t.Fatal(err)
			}
			// Randomized but seeded per (rack, blade, window): every
			// worker count replays the identical access stream.
			rng := sim.NewRNG(uint64(13+ri*8+b)^uint64(window), "parexec-equiv")
			ops := 1500 + int(rng.Uint64n(1500))
			n := 0
			th.Start(func() (mem.VA, bool, bool) {
				if n >= ops {
					return 0, false, false
				}
				n++
				pg := rng.Uint64n(pages)
				return vma.Base + mem.VA(pg*mem.PageSize), rng.Bool(0.3), true
			}, nil)
		}
	}
	end := pod.RunThreads()
	execs := make([]uint64, racks)
	hashes := make([]uint64, racks)
	for i := 0; i < racks; i++ {
		execs[i] = pod.Rack(i).Engine().Executed
		hashes[i] = pod.Rack(i).Engine().DispatchHash()
	}
	return end, execs, hashes, pod.Collector().Snapshot()
}

// TestParallelEquivalence is the determinism contract of the windowed
// executor: for every pod shape and window width, the dense serial
// baseline (every 1-window barrier visited), dense parallel execution,
// and sparse-horizon execution at every worker count must produce the
// same simulation — same finish time, the same dispatch sequence on
// every engine (event-by-event, via the trace hash), and byte-identical
// merged statistics. The window width itself legitimately changes the
// schedule (boundary-buffered deliveries batch differently), which is
// why equality is asserted across worker counts and sparseness within
// one window, not across windows.
func TestParallelEquivalence(t *testing.T) {
	type variant struct {
		workers int
		dense   bool
	}
	variants := []variant{
		{workers: 4, dense: true},
		{workers: 1, dense: false},
		{workers: 2, dense: false},
		{workers: 4, dense: false},
		{workers: 8, dense: false},
	}
	for _, racks := range []int{2, 3} {
		for _, window := range []sim.Duration{250 * sim.Nanosecond, 500 * sim.Nanosecond, sim.Microsecond} {
			t.Run(fmt.Sprintf("racks=%d/window=%v", racks, window), func(t *testing.T) {
				endS, execS, hashS, snapS := equivRun(t, racks, 1, window, true)
				for _, v := range variants {
					end, exec, hash, snap := equivRun(t, racks, v.workers, window, v.dense)
					tag := fmt.Sprintf("workers=%d dense=%v", v.workers, v.dense)
					if end != endS {
						t.Errorf("%s: end %v, dense serial %v", tag, end, endS)
					}
					for i := 0; i < racks; i++ {
						if exec[i] != execS[i] || hash[i] != hashS[i] {
							t.Errorf("%s rack %d: executed/hash %d/%#x, dense serial %d/%#x",
								tag, i, exec[i], hash[i], execS[i], hashS[i])
						}
					}
					if len(snap) != len(snapS) {
						t.Errorf("%s: counter sets differ: %d vs %d", tag, len(snap), len(snapS))
					}
					for k, val := range snapS {
						if snap[k] != val {
							t.Errorf("%s: counter %q = %d, dense serial %d", tag, k, snap[k], val)
						}
					}
				}
			})
		}
	}
}

// seededGap is a randomized ArrivalProcess for the serving equivalence
// sweep: gaps are a pure function of the per-(tenant,rack) RNG tag, so
// serial and parallel runs replay the identical arrival stream.
type seededGap struct {
	rng  *sim.RNG
	mean sim.Duration
}

func newSeededGap(tag string, mean sim.Duration) *seededGap {
	return &seededGap{rng: sim.NewRNG(71, "equiv-serve/"+tag), mean: mean}
}

func (g *seededGap) Next(now sim.Time) sim.Duration {
	return sim.Duration(1 + g.rng.Uint64n(uint64(2*g.mean)))
}

// equivServeRun drives one randomized multi-rack serving run — open-loop
// arrivals on every rack, a spanning tenant whose rack-0 share lives on
// borrowed memory, a QoS bucket in the mix — and returns the invariants:
// finish time, per-engine dispatch-trace hashes, and the merged counter
// snapshot.
func equivServeRun(t *testing.T, racks, workers int, window sim.Duration, dense bool) (sim.Time, []uint64, map[string]uint64) {
	t.Helper()
	cfgs := make([]Config, racks)
	cfgs[0] = podRackConfig(2, 1, 1024)
	for i := 1; i < racks; i++ {
		cfgs[i] = podRackConfig(2, 3, 1024)
	}
	pod, err := NewPod(PodConfig{Racks: cfgs, Workers: workers, Window: window, DenseWindows: dense})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < racks; i++ {
		pod.Rack(i).Engine().EnableDispatchHash()
	}
	s, err := NewPodServing(pod, ServeConfig{Horizon: 300 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	addShare := func(name string, rack, blade, pages int, lim *ctrlplane.TokenBucket) {
		p := pod.Rack(rack).Exec(name)
		vma, err := p.Mmap(uint64(pages)*mem.PageSize, mem.PermReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		err = s.AddTenant(TenantWorkload{
			Name:    name,
			Proc:    p,
			Blade:   blade,
			Arrival: newSeededGap(fmt.Sprintf("%s@r%d", name, rack), 5*sim.Microsecond),
			NextOp:  roundRobinOps(vma.Base, uint64(pages)),
			Limiter: lim,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The spanning tenant's rack-0 share lands on borrowed memory: a
	// filler consumes the 4 MB local blade first, so the share's vma
	// (whose pow2-rounded need fits a lender blade) goes cross-rack.
	// Every other rack hosts a local tenant, rack 1's throttled.
	if _, err := pod.Rack(0).Exec("filler").Mmap(900*mem.PageSize, mem.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	addShare("span", 0, 0, 400, nil)
	addShare("span", 1, 1, 64, nil)
	for i := 1; i < racks; i++ {
		addShare(fmt.Sprintf("solo%d", i), i, 0, 64, nil)
	}
	addShare("gated", 1, 0, 32, ctrlplane.NewTokenBucket(120_000, 8))
	if pod.Rack(0).BorrowedBlades() == 0 {
		t.Fatal("setup: rack 0 did not borrow")
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]uint64, racks)
	for i := 0; i < racks; i++ {
		hashes[i] = pod.Rack(i).Engine().DispatchHash()
	}
	return end, hashes, pod.Collector().Snapshot()
}

// TestParallelEquivalenceServing extends the determinism contract to the
// sharded serving layer: with open-loop arrivals injected on every rack
// (including a borrowed-memory spanning share and a token-bucketed
// tenant), the dense serial baseline, dense parallel execution, and
// sparse-horizon execution at every worker count must produce the same
// finish time, the same per-engine dispatch sequence, and byte-identical
// merged statistics at every racks×window point.
func TestParallelEquivalenceServing(t *testing.T) {
	type variant struct {
		workers int
		dense   bool
	}
	variants := []variant{
		{workers: 4, dense: true},
		{workers: 1, dense: false},
		{workers: 2, dense: false},
		{workers: 4, dense: false},
		{workers: 8, dense: false},
	}
	for _, racks := range []int{2, 3} {
		for _, window := range []sim.Duration{250 * sim.Nanosecond, 500 * sim.Nanosecond, sim.Microsecond} {
			t.Run(fmt.Sprintf("racks=%d/window=%v", racks, window), func(t *testing.T) {
				endS, hashS, snapS := equivServeRun(t, racks, 1, window, true)
				for _, v := range variants {
					end, hash, snap := equivServeRun(t, racks, v.workers, window, v.dense)
					tag := fmt.Sprintf("workers=%d dense=%v", v.workers, v.dense)
					if end != endS {
						t.Errorf("%s: end %v, dense serial %v", tag, end, endS)
					}
					for i := 0; i < racks; i++ {
						if hash[i] != hashS[i] {
							t.Errorf("%s rack %d: dispatch hash %#x, dense serial %#x",
								tag, i, hash[i], hashS[i])
						}
					}
					if len(snap) != len(snapS) {
						t.Errorf("%s: counter sets differ: %d vs %d", tag, len(snap), len(snapS))
					}
					for k, val := range snapS {
						if snap[k] != val {
							t.Errorf("%s: counter %q = %d, dense serial %d", tag, k, snap[k], val)
						}
					}
				}
			})
		}
	}
}

// faultOutcomes collects every fault report of one equivFailRun in a
// comparable struct, so serial and parallel runs can be checked for
// bit-identical failure timelines (start, end, pages lost, regions hit
// — and therefore identical Blackout() and detection-delay accounting).
type faultOutcomes struct {
	kill     KillReport
	killErr  string
	rekill   KillReport
	rekilErr string
	drain    DrainReport
	drainErr string
	swch     SwitchFailoverReport
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// equivFailRun drives the equivServeRun serving mix with the request
// robustness layer armed (deadlines, retries with jittered backoff,
// brownout shedding) and a pod-scale kill storm on top: the borrowed
// blade lent to rack 0 dies mid-run (the cross-rack case — its vma has
// no local headroom and is forcibly unmapped, so span requests on rack
// 0 error and burn their retries), the last rack's switch fails over,
// a rack-1 blade drains, and a second kill of the already-dead blade
// must report the same error at the same instant regardless of worker
// count.
func equivFailRun(t *testing.T, racks, workers int, window sim.Duration) (sim.Time, []uint64, map[string]uint64, faultOutcomes) {
	t.Helper()
	cfgs := make([]Config, racks)
	cfgs[0] = podRackConfig(2, 1, 1024)
	for i := 1; i < racks; i++ {
		cfgs[i] = podRackConfig(2, 3, 1024)
	}
	pod, err := NewPod(PodConfig{Racks: cfgs, Workers: workers, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < racks; i++ {
		pod.Rack(i).Engine().EnableDispatchHash()
	}
	s, err := NewPodServing(pod, ServeConfig{
		Horizon:      300 * sim.Microsecond,
		Deadline:     40 * sim.Microsecond,
		MaxRetries:   2,
		RetryBackoff: 2 * sim.Microsecond,
		Brownout:     0.4,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	addShare := func(name string, rack, blade, pages int, lim *ctrlplane.TokenBucket) mem.VMA {
		p := pod.Rack(rack).Exec(name)
		vma, err := p.Mmap(uint64(pages)*mem.PageSize, mem.PermReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		err = s.AddTenant(TenantWorkload{
			Name:    name,
			Proc:    p,
			Blade:   blade,
			Arrival: newSeededGap(fmt.Sprintf("fail/%s@r%d", name, rack), 5*sim.Microsecond),
			NextOp:  roundRobinOps(vma.Base, uint64(pages)),
			Limiter: lim,
		})
		if err != nil {
			t.Fatal(err)
		}
		return vma
	}
	if _, err := pod.Rack(0).Exec("filler").Mmap(900*mem.PageSize, mem.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	spanVMA := addShare("span", 0, 0, 400, nil)
	addShare("span", 1, 1, 64, nil)
	var solo1VMA mem.VMA
	for i := 1; i < racks; i++ {
		vma := addShare(fmt.Sprintf("solo%d", i), i, 0, 64, nil)
		if i == 1 {
			solo1VMA = vma
		}
	}
	addShare("gated", 1, 0, 32, ctrlplane.NewTokenBucket(120_000, 8))
	if pod.Rack(0).BorrowedBlades() == 0 {
		t.Fatal("setup: rack 0 did not borrow")
	}
	// The kill victim is the span share's borrowed home blade; a few of
	// its pages are materialized directly so the kill has real bytes to
	// lose (serving writes sit in the compute-blade caches this early).
	victim, err := pod.Rack(0).Controller().Allocator().Translate(spanVMA.Base)
	if err != nil {
		t.Fatal(err)
	}
	if !pod.Rack(0).remoteBlade(victim) {
		t.Fatal("setup: span share not on a borrowed blade")
	}
	buf := make([]byte, mem.PageSize)
	for i := 0; i < 32; i++ {
		buf[0] = byte(i)
		pod.Rack(0).MemBlade(int(victim)).WritePage(spanVMA.Base+mem.VA(i)*mem.PageSize, buf)
	}
	// The drain victim is solo1's home on rack 1 — a live local blade
	// there (the lent blade is dead by drain time and must not be it).
	drainVictim, err := pod.Rack(1).Controller().Allocator().Translate(solo1VMA.Base)
	if err != nil {
		t.Fatal(err)
	}

	// Setup (mmaps, the borrow negotiation) advances virtual time
	// deterministically; the storm is timed relative to the run start.
	base := pod.Now()
	var out faultOutcomes
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(pod.KillMemBladeAt(0, victim, base.Add(60*sim.Microsecond), func(r KillReport, e error) {
		out.kill, out.killErr = r, errString(e)
	}))
	must(pod.KillSwitchAt(racks-1, base.Add(80*sim.Microsecond), func(r SwitchFailoverReport, e error) {
		out.swch = r
		if e != nil {
			t.Errorf("switch failover: %v", e)
		}
	}))
	must(pod.DrainMemBladeAt(1, drainVictim, base.Add(120*sim.Microsecond), func(r DrainReport, e error) {
		out.drain, out.drainErr = r, errString(e)
	}))
	must(pod.KillMemBladeAt(0, victim, base.Add(200*sim.Microsecond), func(r KillReport, e error) {
		out.rekill, out.rekilErr = r, errString(e)
	}))

	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]uint64, racks)
	for i := 0; i < racks; i++ {
		hashes[i] = pod.Rack(i).Engine().DispatchHash()
	}
	snap := pod.Collector().Snapshot()

	// Structural checks every run must satisfy, at any worker count.
	if out.killErr != "" {
		t.Errorf("borrowed-blade kill failed: %s", out.killErr)
	}
	if out.kill.PagesLost == 0 || out.kill.Blackout() <= 0 {
		t.Errorf("implausible borrowed-blade kill report: %+v", out.kill)
	}
	if out.rekilErr == "" {
		t.Error("second kill of the dead blade reported no error")
	}
	if out.drainErr != "" {
		t.Errorf("drain failed: %s", out.drainErr)
	}
	if out.swch.Blackout() <= 0 {
		t.Errorf("implausible switch failover report: %+v", out.swch)
	}
	arr := snap[stats.CtrServeArrivals]
	settled := snap[stats.CtrServeCompleted] + snap[stats.CtrServeThrottled] +
		snap[stats.CtrServeDropped] + snap[stats.CtrServeShed] +
		snap[stats.CtrServeTimedOut] + snap[stats.CtrServeFailed]
	if arr != settled {
		t.Errorf("request conservation violated: %d arrivals, %d settled", arr, settled)
	}
	if snap[stats.CtrServeTimedOut] == 0 && snap[stats.CtrServeFailed] == 0 {
		t.Error("kill storm produced no timed-out or failed requests")
	}
	if snap[stats.CtrServeShed] == 0 {
		t.Error("brownout shed nothing during recovery blackout")
	}
	if snap[stats.CtrBladeKills] == 0 || snap[stats.CtrBladeRecoveries] == 0 {
		t.Error("kill/recovery counters silent")
	}
	return end, hashes, snap, out
}

// TestParallelEquivalenceFailures extends the determinism contract to
// failure injection: with blade kills (including the borrowed-blade
// cross-rack case), a switch failover and a drain landing mid-run in a
// robust serving mix, serial and parallel execution must produce the
// same finish time, per-engine dispatch sequences, merged statistics,
// and bit-identical fault reports (same Start/End — so the same
// Blackout() and detection-delay accounting — same pages lost, same
// errors).
func TestParallelEquivalenceFailures(t *testing.T) {
	for _, racks := range []int{2, 3} {
		for _, window := range []sim.Duration{250 * sim.Nanosecond, sim.Microsecond} {
			t.Run(fmt.Sprintf("racks=%d/window=%v", racks, window), func(t *testing.T) {
				endS, hashS, snapS, outS := equivFailRun(t, racks, 1, window)
				for _, workers := range []int{2, 4, 8} {
					end, hash, snap, out := equivFailRun(t, racks, workers, window)
					if end != endS {
						t.Errorf("workers=%d: end %v, serial %v", workers, end, endS)
					}
					for i := 0; i < racks; i++ {
						if hash[i] != hashS[i] {
							t.Errorf("workers=%d rack %d: dispatch hash %#x, serial %#x",
								workers, i, hash[i], hashS[i])
						}
					}
					if out != outS {
						t.Errorf("workers=%d: fault outcomes diverged:\n  parallel %+v\n  serial   %+v", workers, out, outS)
					}
					if len(snap) != len(snapS) {
						t.Errorf("workers=%d: counter sets differ: %d vs %d", workers, len(snap), len(snapS))
					}
					for k, v := range snapS {
						if snap[k] != v {
							t.Errorf("workers=%d: counter %q = %d, serial %d", workers, k, snap[k], v)
						}
					}
				}
			})
		}
	}
}

// TestSparseWindowStats pins the executor's work accounting. Idling a
// pod whose only traffic is the 500 µs promotion epoch ticks leaves
// almost every 1 µs grid window empty: the sparse run must skip most of
// them and elide every quiet boundary's flush, the dense run must skip
// none, and the two must agree on the total grid (executed + skipped)
// — the same virtual span, just fewer barriers.
func TestSparseWindowStats(t *testing.T) {
	mk := func(dense bool) *Pod {
		pod, err := NewPod(PodConfig{
			Racks:        []Config{podRackConfig(2, 1, 1024), podRackConfig(2, 3, 1024)},
			DenseWindows: dense,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pod
	}
	sparse := mk(false)
	sparse.AdvanceTime(2 * sim.Millisecond)
	sx, ss, sf := sparse.WindowStats()
	if ss == 0 {
		t.Error("sparse idle run skipped no windows")
	}
	if sf == 0 {
		t.Error("sparse idle run elided no flushes")
	}
	dense := mk(true)
	dense.AdvanceTime(2 * sim.Millisecond)
	dx, ds, _ := dense.WindowStats()
	if ds != 0 {
		t.Errorf("dense run skipped %d windows, want 0", ds)
	}
	if sx+ss != dx {
		t.Errorf("sparse grid %d executed + %d skipped != dense %d executed", sx, ss, dx)
	}
	if sx >= dx {
		t.Errorf("sparse executed %d windows, want fewer than dense's %d", sx, dx)
	}
}

// TestPodWindowClamp pins the lookahead bound: a configured window wider
// than the interconnect propagation delay must be clamped to it, and a
// zero window must default to it.
func TestPodWindowClamp(t *testing.T) {
	mk := func(window sim.Duration) *Pod {
		pod, err := NewPod(PodConfig{
			Racks:  []Config{podRackConfig(2, 1, 1024), podRackConfig(2, 3, 1024)},
			Window: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pod
	}
	prop := mk(0).Interconnect().Config().Propagation
	if got := mk(0).exec.window; got != prop {
		t.Errorf("zero window defaulted to %v, want propagation %v", got, prop)
	}
	if got := mk(10 * prop).exec.window; got != prop {
		t.Errorf("oversized window clamped to %v, want propagation %v", got, prop)
	}
	if got := mk(prop / 4).exec.window; got != prop/4 {
		t.Errorf("narrow window = %v, want %v", got, prop/4)
	}
}
