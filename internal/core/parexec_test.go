package core

import (
	"fmt"
	"testing"

	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
)

// equivRun drives one randomized multi-rack workload — borrow on the
// memory-poor rack 0, promotion churn, cross-rack fault traffic — and
// returns everything that must be invariant across worker counts: the
// finish time, each engine's executed-event count and dispatch-trace
// hash, and the merged counter snapshot.
func equivRun(t *testing.T, racks, workers int, window sim.Duration) (sim.Time, []uint64, []uint64, map[string]uint64) {
	t.Helper()
	cfgs := make([]Config, racks)
	cfgs[0] = podRackConfig(2, 1, 1024)
	for i := 1; i < racks; i++ {
		cfgs[i] = podRackConfig(2, 3, 1024)
	}
	pod, err := NewPod(PodConfig{
		Racks:     cfgs,
		Promotion: PromotionConfig{Epoch: 200 * sim.Microsecond, Threshold: 4},
		Workers:   workers,
		Window:    window,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < racks; i++ {
		pod.Rack(i).Engine().EnableDispatchHash()
	}
	for ri := 0; ri < racks; ri++ {
		r := pod.Rack(ri)
		p := r.Exec("equiv")
		var vma mem.VMA
		if ri == 0 {
			// Fill the only local blade, borrow for the working set,
			// then free local capacity so mid-run promotion (and the
			// eventual lease return) really happen.
			filler, err := p.Mmap(900*mem.PageSize, mem.PermReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			vma, err = p.Mmap(400*mem.PageSize, mem.PermReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			if r.BorrowedBlades() == 0 {
				t.Fatal("setup: rack 0 did not borrow")
			}
			if err := p.Munmap(filler.Base); err != nil {
				t.Fatal(err)
			}
		} else {
			var err error
			vma, err = p.Mmap(600*mem.PageSize, mem.PermReadWrite)
			if err != nil {
				t.Fatal(err)
			}
		}
		pages := vma.Len / mem.PageSize
		for b := 0; b < 2; b++ {
			th, err := p.SpawnThread(b)
			if err != nil {
				t.Fatal(err)
			}
			// Randomized but seeded per (rack, blade, window): every
			// worker count replays the identical access stream.
			rng := sim.NewRNG(uint64(13+ri*8+b)^uint64(window), "parexec-equiv")
			ops := 1500 + int(rng.Uint64n(1500))
			n := 0
			th.Start(func() (mem.VA, bool, bool) {
				if n >= ops {
					return 0, false, false
				}
				n++
				pg := rng.Uint64n(pages)
				return vma.Base + mem.VA(pg*mem.PageSize), rng.Bool(0.3), true
			}, nil)
		}
	}
	end := pod.RunThreads()
	execs := make([]uint64, racks)
	hashes := make([]uint64, racks)
	for i := 0; i < racks; i++ {
		execs[i] = pod.Rack(i).Engine().Executed
		hashes[i] = pod.Rack(i).Engine().DispatchHash()
	}
	return end, execs, hashes, pod.Collector().Snapshot()
}

// TestParallelEquivalence is the determinism contract of the windowed
// executor: for every pod shape and window width, running serially
// (1 worker) and on worker pools of any width must produce the same
// simulation — same finish time, the same dispatch sequence on every
// engine (event-by-event, via the trace hash), and byte-identical
// merged statistics. The window width itself legitimately changes the
// schedule (boundary-buffered deliveries batch differently), which is
// why equality is asserted across worker counts within one window, not
// across windows.
func TestParallelEquivalence(t *testing.T) {
	for _, racks := range []int{2, 3} {
		for _, window := range []sim.Duration{250 * sim.Nanosecond, 500 * sim.Nanosecond, sim.Microsecond} {
			t.Run(fmt.Sprintf("racks=%d/window=%v", racks, window), func(t *testing.T) {
				endS, execS, hashS, snapS := equivRun(t, racks, 1, window)
				for _, workers := range []int{2, 4, 8} {
					end, exec, hash, snap := equivRun(t, racks, workers, window)
					if end != endS {
						t.Errorf("workers=%d: end %v, serial %v", workers, end, endS)
					}
					for i := 0; i < racks; i++ {
						if exec[i] != execS[i] || hash[i] != hashS[i] {
							t.Errorf("workers=%d rack %d: executed/hash %d/%#x, serial %d/%#x",
								workers, i, exec[i], hash[i], execS[i], hashS[i])
						}
					}
					if len(snap) != len(snapS) {
						t.Errorf("workers=%d: counter sets differ: %d vs %d", workers, len(snap), len(snapS))
					}
					for k, v := range snapS {
						if snap[k] != v {
							t.Errorf("workers=%d: counter %q = %d, serial %d", workers, k, snap[k], v)
						}
					}
				}
			})
		}
	}
}

// seededGap is a randomized ArrivalProcess for the serving equivalence
// sweep: gaps are a pure function of the per-(tenant,rack) RNG tag, so
// serial and parallel runs replay the identical arrival stream.
type seededGap struct {
	rng  *sim.RNG
	mean sim.Duration
}

func newSeededGap(tag string, mean sim.Duration) *seededGap {
	return &seededGap{rng: sim.NewRNG(71, "equiv-serve/"+tag), mean: mean}
}

func (g *seededGap) Next(now sim.Time) sim.Duration {
	return sim.Duration(1 + g.rng.Uint64n(uint64(2*g.mean)))
}

// equivServeRun drives one randomized multi-rack serving run — open-loop
// arrivals on every rack, a spanning tenant whose rack-0 share lives on
// borrowed memory, a QoS bucket in the mix — and returns the invariants:
// finish time, per-engine dispatch-trace hashes, and the merged counter
// snapshot.
func equivServeRun(t *testing.T, racks, workers int, window sim.Duration) (sim.Time, []uint64, map[string]uint64) {
	t.Helper()
	cfgs := make([]Config, racks)
	cfgs[0] = podRackConfig(2, 1, 1024)
	for i := 1; i < racks; i++ {
		cfgs[i] = podRackConfig(2, 3, 1024)
	}
	pod, err := NewPod(PodConfig{Racks: cfgs, Workers: workers, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < racks; i++ {
		pod.Rack(i).Engine().EnableDispatchHash()
	}
	s, err := NewPodServing(pod, ServeConfig{Horizon: 300 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	addShare := func(name string, rack, blade, pages int, lim *ctrlplane.TokenBucket) {
		p := pod.Rack(rack).Exec(name)
		vma, err := p.Mmap(uint64(pages)*mem.PageSize, mem.PermReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		err = s.AddTenant(TenantWorkload{
			Name:    name,
			Proc:    p,
			Blade:   blade,
			Arrival: newSeededGap(fmt.Sprintf("%s@r%d", name, rack), 5*sim.Microsecond),
			NextOp:  roundRobinOps(vma.Base, uint64(pages)),
			Limiter: lim,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The spanning tenant's rack-0 share lands on borrowed memory: a
	// filler consumes the 4 MB local blade first, so the share's vma
	// (whose pow2-rounded need fits a lender blade) goes cross-rack.
	// Every other rack hosts a local tenant, rack 1's throttled.
	if _, err := pod.Rack(0).Exec("filler").Mmap(900*mem.PageSize, mem.PermReadWrite); err != nil {
		t.Fatal(err)
	}
	addShare("span", 0, 0, 400, nil)
	addShare("span", 1, 1, 64, nil)
	for i := 1; i < racks; i++ {
		addShare(fmt.Sprintf("solo%d", i), i, 0, 64, nil)
	}
	addShare("gated", 1, 0, 32, ctrlplane.NewTokenBucket(120_000, 8))
	if pod.Rack(0).BorrowedBlades() == 0 {
		t.Fatal("setup: rack 0 did not borrow")
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]uint64, racks)
	for i := 0; i < racks; i++ {
		hashes[i] = pod.Rack(i).Engine().DispatchHash()
	}
	return end, hashes, pod.Collector().Snapshot()
}

// TestParallelEquivalenceServing extends the determinism contract to the
// sharded serving layer: with open-loop arrivals injected on every rack
// (including a borrowed-memory spanning share and a token-bucketed
// tenant), serial and parallel execution must produce the same finish
// time, the same per-engine dispatch sequence, and byte-identical merged
// statistics at every racks×window×workers point.
func TestParallelEquivalenceServing(t *testing.T) {
	for _, racks := range []int{2, 3} {
		for _, window := range []sim.Duration{250 * sim.Nanosecond, 500 * sim.Nanosecond, sim.Microsecond} {
			t.Run(fmt.Sprintf("racks=%d/window=%v", racks, window), func(t *testing.T) {
				endS, hashS, snapS := equivServeRun(t, racks, 1, window)
				for _, workers := range []int{2, 4, 8} {
					end, hash, snap := equivServeRun(t, racks, workers, window)
					if end != endS {
						t.Errorf("workers=%d: end %v, serial %v", workers, end, endS)
					}
					for i := 0; i < racks; i++ {
						if hash[i] != hashS[i] {
							t.Errorf("workers=%d rack %d: dispatch hash %#x, serial %#x",
								workers, i, hash[i], hashS[i])
						}
					}
					if len(snap) != len(snapS) {
						t.Errorf("workers=%d: counter sets differ: %d vs %d", workers, len(snap), len(snapS))
					}
					for k, v := range snapS {
						if snap[k] != v {
							t.Errorf("workers=%d: counter %q = %d, serial %d", workers, k, snap[k], v)
						}
					}
				}
			})
		}
	}
}

// TestPodWindowClamp pins the lookahead bound: a configured window wider
// than the interconnect propagation delay must be clamped to it, and a
// zero window must default to it.
func TestPodWindowClamp(t *testing.T) {
	mk := func(window sim.Duration) *Pod {
		pod, err := NewPod(PodConfig{
			Racks:  []Config{podRackConfig(2, 1, 1024), podRackConfig(2, 3, 1024)},
			Window: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pod
	}
	prop := mk(0).Interconnect().Config().Propagation
	if got := mk(0).exec.window; got != prop {
		t.Errorf("zero window defaulted to %v, want propagation %v", got, prop)
	}
	if got := mk(10 * prop).exec.window; got != prop {
		t.Errorf("oversized window clamped to %v, want propagation %v", got, prop)
	}
	if got := mk(prop / 4).exec.window; got != prop/4 {
		t.Errorf("narrow window = %v, want %v", got, prop/4)
	}
}
