package core

// Pod-scale MIND: a Pod composes N racks — each with its own
// programmable ToR switch (TCAM, coherence directory), fabric and
// blades — over an inter-rack interconnect with higher latency and
// bounded bandwidth. One rack is no longer the world: it is a component.
//
// Cross-rack memory works by capacity borrowing at blade granularity. A
// rack whose mmap hits ENOMEM asks the pod for a spare memory blade
// from another rack; the lender retires the blade from its own
// allocator and the borrower registers it as a new (remote-homed)
// blade, so every existing mechanism — translation, placement,
// protection, coherence — applies unchanged. Only the data path
// differs: messages to a borrowed blade leave the borrower's egress
// pipeline, cross the interconnect, and traverse the owning rack's
// switch before reaching the blade's NIC ("routed through both
// switches"). Coherence domains stay per-rack, exactly as in MIND: one
// ToR owns the directory for the address ranges its compute blades
// fault on.
//
// An epoch-driven promotion policy (ctrlplane.PlanPromotions,
// INDIGO-style) watches per-blade remote fetch heat and migrates hot
// remote vmas back to local blades with the elasticity machinery
// (freeze → reset → throttled page copy → TCAM rewrite), and returns
// fully-emptied borrowed blades to their owners.
//
// Execution model: a 1-rack pod shares one engine and one collector
// with its rack — the classic single-threaded simulation, bit-identical
// to the pre-pod code. A multi-rack pod gives every rack its own engine
// and collector and advances them in lockstep windows no wider than the
// interconnect propagation delay (parexec.go); racks only interact
// through boundary-buffered interconnect messages and barrier-context
// control-plane operations, so windows may execute concurrently.

import (
	"fmt"

	"mind/internal/ctrlplane"
	"mind/internal/fabric"
	"mind/internal/sim"
	"mind/internal/stats"
)

// PromotionConfig paces the pod's hot-page promotion policy.
type PromotionConfig struct {
	// Epoch is the policy scan period (default 500 µs).
	Epoch sim.Duration
	// Threshold is the minimum remote data-path messages (fault fetch
	// requests plus page writebacks) a borrowed blade must see in one
	// epoch before its vmas become promotion candidates (default 32).
	Threshold uint64
	// MaxVMAsPerEpoch bounds promotions started per rack per epoch
	// (default 8).
	MaxVMAsPerEpoch int
	// Disable turns the policy off: borrowed memory stays remote (the
	// no-migration ablation the pod experiment toggles).
	Disable bool
}

// DefaultPromotionConfig returns the promotion policy defaults.
func DefaultPromotionConfig() PromotionConfig {
	return PromotionConfig{
		Epoch:           500 * sim.Microsecond,
		Threshold:       32,
		MaxVMAsPerEpoch: 8,
	}
}

// PodConfig assembles a pod.
type PodConfig struct {
	// Racks configures each member rack.
	Racks []Config
	// Interconnect calibrates the inter-rack network (zero value: the
	// fabric package default).
	Interconnect fabric.InterConfig
	// Promotion paces hot-page promotion (zero fields take defaults).
	Promotion PromotionConfig
	// Workers is how many OS threads execute rack windows concurrently
	// in a multi-rack pod (0 or 1: serial). Any worker count produces
	// bit-identical results; workers only change wall-clock time.
	Workers int
	// Window overrides the lockstep window width (0: the interconnect
	// propagation delay). It is clamped to at most the propagation
	// delay — the conservative lookahead bound.
	Window sim.Duration
	// DenseWindows disables the sparse-horizon jump: the executor
	// visits every 1-window barrier even when provably a no-op, as it
	// did before sparse execution existed. Either setting produces
	// bit-identical simulations (the equivalence suites sweep both);
	// dense exists as the oracle for that comparison and as an escape
	// hatch, not as a supported performance mode.
	DenseWindows bool
}

// DefaultPodConfig returns a pod of racks identical racks, each shaped
// by core.DefaultConfig.
func DefaultPodConfig(racks, computeBlades, memoryBlades int) PodConfig {
	cfgs := make([]Config, racks)
	for i := range cfgs {
		cfgs[i] = DefaultConfig(computeBlades, memoryBlades)
	}
	return PodConfig{Racks: cfgs, Interconnect: fabric.DefaultInterConfig()}
}

// Pod is a multi-rack MIND deployment. A 1-rack pod shares one engine
// and collector with its rack; a multi-rack pod runs one engine per
// rack under the windowed executor (exec).
type Pod struct {
	// eng and col are the shared engine/collector of a 1-rack pod. For
	// a multi-rack pod eng is unused (each rack owns an engine) and col
	// holds only the pod's own barrier-context counters (borrows,
	// returns); Collector() merges everything on demand.
	eng   *sim.Engine
	col   *stats.Collector
	racks []*Rack
	ic    *fabric.Interconnect
	promo PromotionConfig
	exec  *podExec
	// multiRack is fixed at construction (before racks are built): it
	// gates address striping, the interconnect, per-rack engines and
	// the pod counters.
	multiRack bool

	// leases records live cross-rack blade loans, for diagnostics.
	leases int

	// Pod-level counters, bumped only in barrier context (registered
	// only for multi-rack pods, so a 1-rack pod's counter set is
	// exactly the classic single-rack one).
	hBorrows stats.Handle
	hReturns stats.Handle
}

// NewPod builds and wires a pod of racks.
func NewPod(cfg PodConfig) (*Pod, error) {
	if len(cfg.Racks) == 0 {
		return nil, fmt.Errorf("core: pod needs at least one rack")
	}
	if cfg.Promotion.Epoch == 0 {
		cfg.Promotion.Epoch = DefaultPromotionConfig().Epoch
	}
	if cfg.Promotion.Threshold == 0 {
		cfg.Promotion.Threshold = DefaultPromotionConfig().Threshold
	}
	if cfg.Promotion.MaxVMAsPerEpoch == 0 {
		cfg.Promotion.MaxVMAsPerEpoch = DefaultPromotionConfig().MaxVMAsPerEpoch
	}
	p := &Pod{
		eng:       sim.NewEngine(),
		col:       stats.NewCollector(),
		promo:     cfg.Promotion,
		multiRack: len(cfg.Racks) > 1,
	}
	if p.multiRack {
		p.hBorrows = p.col.Handle(stats.CtrBladeBorrows)
		p.hReturns = p.col.Handle(stats.CtrBladeReturns)
	}
	for i, rc := range cfg.Racks {
		r, err := newRack(p, i, rc)
		if err != nil {
			return nil, fmt.Errorf("core: rack %d: %w", i, err)
		}
		p.racks = append(p.racks, r)
	}
	if p.multiRack {
		engs := make([]*sim.Engine, len(p.racks))
		for i, r := range p.racks {
			engs[i] = r.eng
		}
		p.ic = fabric.NewShardedInterconnect(engs, cfg.Interconnect)
		p.exec = newPodExec(p, cfg.Window, cfg.Workers, cfg.DenseWindows)
		if !cfg.Promotion.Disable {
			for _, r := range p.racks {
				r.schedulePromotionTick(p.promo.Epoch)
			}
		}
	}
	return p, nil
}

// Rack returns member rack i.
func (p *Pod) Rack(i int) *Rack { return p.racks[i] }

// Racks returns the number of member racks.
func (p *Pod) Racks() int { return len(p.racks) }

// Engine exposes the shared simulation engine of a 1-rack pod. A
// multi-rack pod has one engine per rack (Rack.Engine); use
// ExecutedEvents for pod-wide event counts.
func (p *Pod) Engine() *sim.Engine { return p.eng }

// ExecutedEvents returns the total events dispatched across the pod's
// engines. Under the parallel executor, read it only between drives or
// at barriers.
func (p *Pod) ExecutedEvents() uint64 {
	if !p.multiRack {
		return p.eng.Executed
	}
	var n uint64
	for _, r := range p.racks {
		n += r.eng.Executed
	}
	return n
}

// Collector returns the pod's metrics. For a 1-rack pod this is the
// shared live collector. For a multi-rack pod it is a merged snapshot:
// counters and latency components sum across the rack shards and the
// pod's own counters; series and histograms are shared by reference
// (per-rack series names are rack-qualified, so they never collide).
// Call it between drives or at barriers.
func (p *Pod) Collector() *stats.Collector {
	if !p.multiRack {
		return p.col
	}
	m := stats.NewCollector()
	m.MergeFrom(p.col)
	for _, r := range p.racks {
		m.MergeFrom(r.col)
	}
	return m
}

// CounterTotal sums one named counter across the pod's collectors — the
// cheap form of Collector().Counter(name) for barrier-context sampling.
func (p *Pod) CounterTotal(name string) uint64 {
	n := p.col.Counter(name)
	if p.multiRack {
		for _, r := range p.racks {
			n += r.col.Counter(name)
		}
	}
	return n
}

// Interconnect exposes the inter-rack network model (nil for a 1-rack
// pod).
func (p *Pod) Interconnect() *fabric.Interconnect { return p.ic }

// Leases returns the number of live cross-rack blade loans.
func (p *Pod) Leases() int { return p.leases }

// WindowStats reports the windowed executor's work accounting: windows
// actually swept, grid windows skipped by the sparse-horizon jump, and
// barriers whose cross-rack flush was elided because no send was
// buffered. All zero for a 1-rack pod (no windowed executor). Read
// between drives or at barriers.
func (p *Pod) WindowStats() (executed, skipped, flushesElided uint64) {
	if !p.multiRack {
		return 0, 0, 0
	}
	return p.exec.windowsExecuted, p.exec.windowsSkipped, p.exec.flushesElided
}

// Now returns current virtual time (the window cursor for a multi-rack
// pod).
func (p *Pod) Now() sim.Time {
	if p.multiRack {
		return p.exec.vnow
	}
	return p.eng.Now()
}

// AdvanceTime idles the pod for d of virtual time (lets epochs run).
func (p *Pod) AdvanceTime(d sim.Duration) {
	if p.multiRack {
		target := p.exec.vnow.Add(d)
		p.exec.drive(true, target, func() bool { return p.exec.vnow >= target })
		return
	}
	p.eng.RunUntil(p.eng.Now().Add(d))
}

// RunThreads drives the engines until every started thread in the pod
// finishes, then stops the epoch loops and drains remaining events
// (in-flight writebacks etc.). It returns the virtual time at which the
// last thread finished.
func (p *Pod) RunThreads() sim.Time {
	if p.multiRack {
		x := p.exec
		x.drive(true, 0, func() bool { return p.activeThreadCount() == 0 })
		finishedAt := sim.Time(0)
		for _, r := range p.racks {
			if r.lastFinish > finishedAt {
				finishedAt = r.lastFinish
			}
		}
		for _, r := range p.racks {
			r.StopEpochs()
		}
		p.StopPromotionEpochs()
		x.drive(true, 0, x.idle)
		return finishedAt
	}
	for p.racks[0].activeThreads > 0 {
		if !p.eng.Step() {
			panic("core: threads pending but no events (wedged)")
		}
	}
	finishedAt := p.eng.Now()
	for _, r := range p.racks {
		r.StopEpochs()
	}
	p.StopPromotionEpochs()
	p.eng.Run()
	return finishedAt
}

// activeThreadCount sums started-but-unfinished threads over the racks.
// Rack counts are mutated by rack events; call only at barriers.
func (p *Pod) activeThreadCount() int {
	n := 0
	for _, r := range p.racks {
		n += r.activeThreads
	}
	return n
}

// SampleEvery registers a barrier-driven sampler: fn(now) runs at the
// first window barrier at or after each multiple of every. This
// replaces engine-scheduled self-rescheduling samplers, which would
// keep the engines eternally non-idle and — worse — run as rack events
// whose placement depends on the shard layout. Multi-rack pods only.
func (p *Pod) SampleEvery(every sim.Duration, fn func(now sim.Time)) {
	if !p.multiRack {
		panic("core: SampleEvery requires a multi-rack pod")
	}
	p.exec.sampleEvery = every
	p.exec.sampleFn = fn
	p.exec.nextSample = p.exec.vnow.Add(every)
}

// StopPromotionEpochs cancels the promotion policy loops (end of run).
func (p *Pod) StopPromotionEpochs() {
	for _, r := range p.racks {
		if r.promoTick != nil {
			r.eng.Cancel(r.promoTick)
			r.promoTick = nil
		}
	}
}

// canBorrow reports whether cross-rack borrowing is possible at all.
func (p *Pod) canBorrow() bool { return len(p.racks) > 1 }

// borrowAsync asks the pod for a remote memory blade able to hold a
// reservation of need bytes for rack r. The negotiation costs one
// inter-rack control round trip; done(ok) fires in the borrower's event
// context at the due time. Called from rack event context: the request
// only queues on the rack, and the barrier performs the allocator
// transfer exclusively (parexec.go).
func (p *Pod) borrowAsync(r *Rack, need uint64, done func(ok bool)) {
	r.pendingBorrows = append(r.pendingBorrows, borrowReq{
		need: need,
		due:  r.eng.Now().Add(p.ic.CtrlRTT()),
		done: done,
	})
}

// borrow transfers one lendable blade from another rack to r. The
// lender scan starts at the next rack index, so load spreads
// deterministically. The lender's blade is only retired after the
// borrower successfully registers the partition, so a borrower-side
// failure (its address stripe cannot host the partition) leaves every
// lender fully intact. Barrier context only: it mutates two racks'
// allocators and blade tables.
func (p *Pod) borrow(r *Rack, need uint64) bool {
	n := len(p.racks)
	for k := 1; k < n; k++ {
		lender := p.racks[(r.idx+k)%n]
		// A blade the lender itself borrowed is not its to lend on: a
		// second-hand lease would record the wrong physical owner (and a
		// fabric node id from a third rack).
		id, ok := lender.ctl.Allocator().LendableBlade(need, func(id ctrlplane.BladeID) bool {
			return !lender.remoteBlade(id)
		})
		if !ok {
			continue
		}
		cap, err := lender.ctl.Allocator().BladeCapacity(id)
		if err != nil {
			continue
		}
		if err := lender.ctl.Allocator().SetBladeAvailable(id, false); err != nil {
			continue
		}
		newID, err := r.ctl.Allocator().AddBlade(cap)
		if err != nil {
			// Borrower-side failure: the lender keeps its blade. A
			// smaller blade from another lender may still fit the
			// borrower's stripe, so the scan continues.
			_ = lender.ctl.Allocator().SetBladeAvailable(id, true)
			continue
		}
		if err := lender.ctl.Allocator().RetireBlade(id); err != nil {
			// Unreachable: the blade is empty and was just made
			// unavailable, and borrows run exclusively at barriers.
			panic(fmt.Sprintf("core: lend of blade %d: %v", id, err))
		}
		if int(newID) != len(r.mblades) {
			panic("core: borrow broke blade id/index correspondence")
		}
		r.mblades = append(r.mblades, lender.mblades[int(id)])
		r.mbOwner = append(r.mbOwner, lender.idx)
		r.mbOwnNode = append(r.mbOwnNode, lender.mbOwnNode[int(id)])
		r.remoteHeat = append(r.remoteHeat, 0)
		r.borrowed++
		p.leases++
		p.col.IncH(p.hBorrows, 1)
		r.col.IncH(r.hBladeEvents, 1)
		return true
	}
	return false
}

// returnBlade hands an empty borrowed blade back to its owner: the
// owner re-registers it under a fresh local id (blade ids are never
// reused), and only then does the borrower retire its side — so a
// failed owner-side registration (e.g. the owner's address stripe is
// exhausted) leaves the lease fully intact instead of stranding the
// blade between the two allocators. Reports whether the return
// happened. Barrier context only.
func (p *Pod) returnBlade(borrower *Rack, id ctrlplane.BladeID) bool {
	owner := p.racks[borrower.mbOwner[int(id)]]
	blade := borrower.mblades[int(id)]
	cap, err := borrower.ctl.Allocator().BladeCapacity(id)
	if err != nil {
		return false
	}
	newID, err := owner.ctl.Allocator().AddBlade(cap)
	if err != nil {
		return false
	}
	if err := borrower.ctl.Allocator().SetBladeAvailable(id, false); err != nil {
		panic(fmt.Sprintf("core: return of borrowed blade %d: %v", id, err))
	}
	if err := borrower.ctl.Allocator().RetireBlade(id); err != nil {
		// Unreachable: the caller verified the blade holds nothing, and
		// returns run exclusively at barriers.
		panic(fmt.Sprintf("core: return of borrowed blade %d: %v", id, err))
	}
	blade.DropAll()
	owner.fab.AddNode(memNodeBase + fabric.NodeID(newID))
	owner.mblades = append(owner.mblades, blade)
	owner.mbOwner = append(owner.mbOwner, owner.idx)
	owner.mbOwnNode = append(owner.mbOwnNode, memNodeBase+fabric.NodeID(newID))
	owner.remoteHeat = append(owner.remoteHeat, 0)
	borrower.borrowed--
	p.leases--
	p.col.IncH(p.hReturns, 1)
	owner.col.IncH(owner.hBladeEvents, 1)
	return true
}

// crossJob carries one switch -> home blade -> switch round trip
// through the engines (memRound). Jobs are pooled per requester rack,
// so the fault path allocates nothing in steady state; a job is
// allocated and freed on its requester's shard, and in between each
// stage runs on whichever shard currently holds the message — the
// handoffs ride the interconnect's boundary buffering, which is what
// makes the chain safe under the parallel executor.
type crossJob struct {
	p     *Pod
	from  *Rack // requester; for a local round trip also the owner
	owner *Rack // rack physically hosting the blade
	node  fabric.NodeID
	req   int          // request payload size
	resp  int          // response payload size
	dma   sim.Duration // blade-side service between request and response
	fn    func(any)
	arg   any
}

// memRound runs one switch -> home blade -> switch round trip for rack
// c against registered blade id: a req-byte request to the blade, dma
// of blade-side service, and a resp-byte response; fn(arg) fires when
// the response is ready at c's switch. For a local blade this is the
// classic two-hop path (bit-identical to the pre-pod fetch chain). For
// a borrowed blade the whole round trip is fused: request and response
// each cross the interconnect once, and every owner-side hop runs on
// the owner's shard.
func (c *Rack) memRound(id ctrlplane.BladeID, req, resp int, dma sim.Duration, fn func(any), arg any) {
	j := c.crossFree.Get()
	if j == nil {
		j = &crossJob{p: c.pod, from: c}
	}
	owner := c.pod.racks[c.mbOwner[int(id)]]
	j.owner, j.node, j.req, j.resp, j.dma, j.fn, j.arg = owner, c.mbOwnNode[int(id)], req, resp, dma, fn, arg
	if owner == c {
		c.fab.SendFromSwitchArg(j.node, req, memAtBlade, j)
		return
	}
	c.remoteHeat[int(id)]++
	c.col.IncH(c.hCrossMsgs, 1)
	c.fab.TraverseEgressArg(memReqToUplink, j)
}

func (c *Rack) freeCrossJob(j *crossJob) (fn func(any), arg any) {
	fn, arg = j.fn, j.arg
	j.fn, j.arg = nil, nil
	j.owner = nil
	c.crossFree.Put(j)
	return fn, arg
}

// memReqToUplink: the request left the requester's egress pipeline;
// cross the interconnect.
func memReqToUplink(x any) {
	j := x.(*crossJob)
	j.p.ic.Send(j.from.idx, j.owner.idx, j.req, memReqAtOwner, j)
}

// memReqAtOwner: the request arrived at the owning rack's switch;
// traverse its ingress pipeline.
func memReqAtOwner(x any) {
	j := x.(*crossJob)
	j.owner.fab.TraverseIngressArg(memReqOwnerToBlade, j)
}

// memReqOwnerToBlade: the owner's data plane forwards to the blade (its
// egress + the blade's NIC).
func memReqOwnerToBlade(x any) {
	j := x.(*crossJob)
	j.owner.fab.SendFromSwitchArg(j.node, j.req, memAtBlade, j)
}

// memAtBlade: the request reached the memory blade — NIC-only DMA
// service, no CPU (§6.2). A zero dma (page writebacks: the payload
// travelled with the request) turns the blade around immediately.
func memAtBlade(x any) {
	j := x.(*crossJob)
	if j.dma > 0 {
		j.owner.eng.ScheduleArg(j.dma, memDMADone, j)
		return
	}
	memDMADone(x)
}

// memDMADone: blade service finished; the response heads back to the
// owning switch.
func memDMADone(x any) {
	j := x.(*crossJob)
	j.owner.fab.SendToSwitchArg(j.node, j.resp, memRespAtOwnerSwitch, j)
}

// memRespAtOwnerSwitch: the response is in the owning rack's switch.
// Local round trips complete here; remote ones cross back.
func memRespAtOwnerSwitch(x any) {
	j := x.(*crossJob)
	if j.owner == j.from {
		fn, arg := j.from.freeCrossJob(j)
		fn(arg)
		return
	}
	j.owner.col.IncH(j.owner.hCrossMsgs, 1)
	j.owner.fab.TraverseEgressArg(memRespToUplink, j)
}

// memRespToUplink: cross the interconnect back toward the requester.
func memRespToUplink(x any) {
	j := x.(*crossJob)
	j.p.ic.Send(j.owner.idx, j.from.idx, j.resp, memRespAtRequester, j)
}

// memRespAtRequester: arrival at the requester's switch; one ingress
// traversal and the data-plane continuation runs.
func memRespAtRequester(x any) {
	j := x.(*crossJob)
	from := j.from
	fn, arg := from.freeCrossJob(j)
	from.fab.TraverseIngressArg(fn, arg)
}
