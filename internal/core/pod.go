package core

// Pod-scale MIND: a Pod composes N racks — each with its own
// programmable ToR switch (TCAM, coherence directory), fabric and
// blades — over an inter-rack interconnect with higher latency and
// bounded bandwidth. One rack is no longer the world: it is a component.
//
// Cross-rack memory works by capacity borrowing at blade granularity. A
// rack whose mmap hits ENOMEM asks the pod for a spare memory blade
// from another rack; the lender retires the blade from its own
// allocator and the borrower registers it as a new (remote-homed)
// blade, so every existing mechanism — translation, placement,
// protection, coherence — applies unchanged. Only the data path
// differs: messages to a borrowed blade leave the borrower's egress
// pipeline, cross the interconnect, and traverse the owning rack's
// switch before reaching the blade's NIC ("routed through both
// switches"). Coherence domains stay per-rack, exactly as in MIND: one
// ToR owns the directory for the address ranges its compute blades
// fault on.
//
// An epoch-driven promotion policy (ctrlplane.PlanPromotions,
// INDIGO-style) watches per-blade remote fetch heat and migrates hot
// remote vmas back to local blades with the elasticity machinery
// (freeze → reset → throttled page copy → TCAM rewrite), and returns
// fully-emptied borrowed blades to their owners.

import (
	"fmt"

	"mind/internal/ctrlplane"
	"mind/internal/fabric"
	"mind/internal/sim"
	"mind/internal/stats"
)

// PromotionConfig paces the pod's hot-page promotion policy.
type PromotionConfig struct {
	// Epoch is the policy scan period (default 500 µs).
	Epoch sim.Duration
	// Threshold is the minimum remote data-path messages (fault fetch
	// requests plus page writebacks) a borrowed blade must see in one
	// epoch before its vmas become promotion candidates (default 32).
	Threshold uint64
	// MaxVMAsPerEpoch bounds promotions started per rack per epoch
	// (default 8).
	MaxVMAsPerEpoch int
	// Disable turns the policy off: borrowed memory stays remote (the
	// no-migration ablation the pod experiment toggles).
	Disable bool
}

// DefaultPromotionConfig returns the promotion policy defaults.
func DefaultPromotionConfig() PromotionConfig {
	return PromotionConfig{
		Epoch:           500 * sim.Microsecond,
		Threshold:       32,
		MaxVMAsPerEpoch: 8,
	}
}

// PodConfig assembles a pod.
type PodConfig struct {
	// Racks configures each member rack.
	Racks []Config
	// Interconnect calibrates the inter-rack network (zero value: the
	// fabric package default).
	Interconnect fabric.InterConfig
	// Promotion paces hot-page promotion (zero fields take defaults).
	Promotion PromotionConfig
}

// DefaultPodConfig returns a pod of racks identical racks, each shaped
// by core.DefaultConfig.
func DefaultPodConfig(racks, computeBlades, memoryBlades int) PodConfig {
	cfgs := make([]Config, racks)
	for i := range cfgs {
		cfgs[i] = DefaultConfig(computeBlades, memoryBlades)
	}
	return PodConfig{Racks: cfgs, Interconnect: fabric.DefaultInterConfig()}
}

// Pod is a multi-rack MIND deployment sharing one simulation engine and
// one metrics collector.
type Pod struct {
	eng   *sim.Engine
	col   *stats.Collector
	racks []*Rack
	ic    *fabric.Interconnect
	promo PromotionConfig
	// multiRack is fixed at construction (before racks are built): it
	// gates address striping, the interconnect, and the pod counters.
	multiRack bool

	promoTick     *sim.Event
	activeThreads int

	// leases records live cross-rack blade loans, for diagnostics.
	leases int

	// crossFree pools the inter-rack message-hop jobs.
	crossFree sim.Pool[crossJob]

	// Cross-rack counters (registered only for multi-rack pods, so a
	// 1-rack pod's counter set is exactly the classic single-rack one).
	hCrossMsgs     stats.Handle
	hBorrows       stats.Handle
	hReturns       stats.Handle
	hPromotedVMAs  stats.Handle
	hPromotedPages stats.Handle
}

// NewPod builds and wires a pod of racks.
func NewPod(cfg PodConfig) (*Pod, error) {
	if len(cfg.Racks) == 0 {
		return nil, fmt.Errorf("core: pod needs at least one rack")
	}
	if cfg.Promotion.Epoch == 0 {
		cfg.Promotion.Epoch = DefaultPromotionConfig().Epoch
	}
	if cfg.Promotion.Threshold == 0 {
		cfg.Promotion.Threshold = DefaultPromotionConfig().Threshold
	}
	if cfg.Promotion.MaxVMAsPerEpoch == 0 {
		cfg.Promotion.MaxVMAsPerEpoch = DefaultPromotionConfig().MaxVMAsPerEpoch
	}
	p := &Pod{
		eng:       sim.NewEngine(),
		col:       stats.NewCollector(),
		promo:     cfg.Promotion,
		multiRack: len(cfg.Racks) > 1,
	}
	if len(cfg.Racks) > 1 {
		ic := cfg.Interconnect
		if ic == (fabric.InterConfig{}) {
			ic = fabric.DefaultInterConfig()
		}
		p.ic = fabric.NewInterconnect(p.eng, ic, len(cfg.Racks))
		p.hCrossMsgs = p.col.Handle(stats.CtrCrossRackMsgs)
		p.hBorrows = p.col.Handle(stats.CtrBladeBorrows)
		p.hReturns = p.col.Handle(stats.CtrBladeReturns)
		p.hPromotedVMAs = p.col.Handle(stats.CtrPromotedVMAs)
		p.hPromotedPages = p.col.Handle(stats.CtrPromotedPages)
	}
	for i, rc := range cfg.Racks {
		r, err := newRack(p, i, rc)
		if err != nil {
			return nil, fmt.Errorf("core: rack %d: %w", i, err)
		}
		p.racks = append(p.racks, r)
	}
	if len(p.racks) > 1 && !cfg.Promotion.Disable {
		p.schedulePromotionEpoch()
	}
	return p, nil
}

// Rack returns member rack i.
func (p *Pod) Rack(i int) *Rack { return p.racks[i] }

// Racks returns the number of member racks.
func (p *Pod) Racks() int { return len(p.racks) }

// Engine exposes the pod-shared simulation engine.
func (p *Pod) Engine() *sim.Engine { return p.eng }

// Collector exposes the pod-shared metrics collector.
func (p *Pod) Collector() *stats.Collector { return p.col }

// Interconnect exposes the inter-rack network model (nil for a 1-rack
// pod).
func (p *Pod) Interconnect() *fabric.Interconnect { return p.ic }

// Leases returns the number of live cross-rack blade loans.
func (p *Pod) Leases() int { return p.leases }

// Now returns current virtual time.
func (p *Pod) Now() sim.Time { return p.eng.Now() }

// AdvanceTime idles the pod for d of virtual time (lets epochs run).
func (p *Pod) AdvanceTime(d sim.Duration) {
	p.eng.RunUntil(p.eng.Now().Add(d))
}

// RunThreads drives the engine until every started thread in the pod
// finishes, then stops the epoch loops and drains remaining events
// (in-flight writebacks etc.). It returns the virtual time at which the
// last thread finished.
func (p *Pod) RunThreads() sim.Time {
	for p.activeThreads > 0 {
		if !p.eng.Step() {
			panic("core: threads pending but no events (wedged)")
		}
	}
	finishedAt := p.eng.Now()
	for _, r := range p.racks {
		r.StopEpochs()
	}
	p.StopPromotionEpochs()
	p.eng.Run()
	return finishedAt
}

// schedulePromotionEpoch arms the pod-wide promotion policy tick.
func (p *Pod) schedulePromotionEpoch() {
	p.promoTick = p.eng.Schedule(p.promo.Epoch, func() {
		for _, r := range p.racks {
			r.runPromotionEpoch()
		}
		p.schedulePromotionEpoch()
	})
}

// StopPromotionEpochs cancels the promotion policy loop (end of run).
func (p *Pod) StopPromotionEpochs() {
	if p.promoTick != nil {
		p.eng.Cancel(p.promoTick)
		p.promoTick = nil
	}
}

// canBorrow reports whether cross-rack borrowing is possible at all.
func (p *Pod) canBorrow() bool { return len(p.racks) > 1 }

// borrowAsync asks the pod for a remote memory blade able to hold a
// reservation of need bytes for rack r. The negotiation costs one
// inter-rack control round trip; done(ok) fires in event context.
func (p *Pod) borrowAsync(r *Rack, need uint64, done func(ok bool)) {
	p.eng.Schedule(p.ic.CtrlRTT(), func() {
		done(p.borrow(r, need))
	})
}

// borrow transfers one lendable blade from another rack to r. The
// lender scan starts at the next rack index, so load spreads
// deterministically. The lender's blade is only retired after the
// borrower successfully registers the partition, so a borrower-side
// failure (its address stripe cannot host the partition) leaves every
// lender fully intact.
func (p *Pod) borrow(r *Rack, need uint64) bool {
	n := len(p.racks)
	for k := 1; k < n; k++ {
		lender := p.racks[(r.idx+k)%n]
		// A blade the lender itself borrowed is not its to lend on: a
		// second-hand lease would record the wrong physical owner (and a
		// fabric node id from a third rack).
		id, ok := lender.ctl.Allocator().LendableBlade(need, func(id ctrlplane.BladeID) bool {
			return !lender.remoteBlade(id)
		})
		if !ok {
			continue
		}
		cap, err := lender.ctl.Allocator().BladeCapacity(id)
		if err != nil {
			continue
		}
		if err := lender.ctl.Allocator().SetBladeAvailable(id, false); err != nil {
			continue
		}
		newID, err := r.ctl.Allocator().AddBlade(cap)
		if err != nil {
			// Borrower-side failure: the lender keeps its blade. A
			// smaller blade from another lender may still fit the
			// borrower's stripe, so the scan continues.
			_ = lender.ctl.Allocator().SetBladeAvailable(id, true)
			continue
		}
		if err := lender.ctl.Allocator().RetireBlade(id); err != nil {
			// Unreachable: the blade is empty and was just made
			// unavailable, and the engine is single-threaded in between.
			panic(fmt.Sprintf("core: lend of blade %d: %v", id, err))
		}
		if int(newID) != len(r.mblades) {
			panic("core: borrow broke blade id/index correspondence")
		}
		r.mblades = append(r.mblades, lender.mblades[int(id)])
		r.mbOwner = append(r.mbOwner, lender.idx)
		r.mbOwnNode = append(r.mbOwnNode, lender.mbOwnNode[int(id)])
		r.remoteHeat = append(r.remoteHeat, 0)
		r.borrowed++
		p.leases++
		p.col.IncH(p.hBorrows, 1)
		p.col.IncH(r.hBladeEvents, 1)
		return true
	}
	return false
}

// returnBlade hands an empty borrowed blade back to its owner: the
// owner re-registers it under a fresh local id (blade ids are never
// reused), and only then does the borrower retire its side — so a
// failed owner-side registration (e.g. the owner's address stripe is
// exhausted) leaves the lease fully intact instead of stranding the
// blade between the two allocators. Reports whether the return
// happened.
func (p *Pod) returnBlade(borrower *Rack, id ctrlplane.BladeID) bool {
	owner := p.racks[borrower.mbOwner[int(id)]]
	blade := borrower.mblades[int(id)]
	cap, err := borrower.ctl.Allocator().BladeCapacity(id)
	if err != nil {
		return false
	}
	newID, err := owner.ctl.Allocator().AddBlade(cap)
	if err != nil {
		return false
	}
	if err := borrower.ctl.Allocator().SetBladeAvailable(id, false); err != nil {
		panic(fmt.Sprintf("core: return of borrowed blade %d: %v", id, err))
	}
	if err := borrower.ctl.Allocator().RetireBlade(id); err != nil {
		// Unreachable: the caller verified the blade holds nothing, and
		// the engine is single-threaded between that check and here.
		panic(fmt.Sprintf("core: return of borrowed blade %d: %v", id, err))
	}
	blade.DropAll()
	owner.fab.AddNode(memNodeBase + fabric.NodeID(newID))
	owner.mblades = append(owner.mblades, blade)
	owner.mbOwner = append(owner.mbOwner, owner.idx)
	owner.mbOwnNode = append(owner.mbOwnNode, memNodeBase+fabric.NodeID(newID))
	owner.remoteHeat = append(owner.remoteHeat, 0)
	borrower.borrowed--
	p.leases--
	p.col.IncH(p.hReturns, 1)
	p.col.IncH(owner.hBladeEvents, 1)
	return true
}

// crossJob carries one inter-rack message hop chain through the engine;
// jobs are pooled so the cross-rack fault path allocates nothing in
// steady state.
type crossJob struct {
	p     *Pod
	from  *Rack // borrower (the rack whose switch originated the route)
	owner *Rack // rack physically hosting the blade
	node  fabric.NodeID
	bytes int
	fn    func(any)
	arg   any
}

func (p *Pod) newCrossJob(from, owner *Rack, node fabric.NodeID, bytes int, fn func(any), arg any) *crossJob {
	j := p.crossFree.Get()
	if j == nil {
		j = &crossJob{p: p}
	}
	j.from, j.owner, j.node, j.bytes, j.fn, j.arg = from, owner, node, bytes, fn, arg
	return j
}

func (p *Pod) freeCrossJob(j *crossJob) (fn func(any), arg any) {
	fn, arg = j.fn, j.arg
	j.fn, j.arg = nil, nil
	j.from, j.owner = nil, nil
	p.crossFree.Put(j)
	return fn, arg
}

// crossToBlade routes borrower switch -> interconnect -> owner switch ->
// blade NIC.
func (p *Pod) crossToBlade(from *Rack, ownerIdx int, node fabric.NodeID, bytes int, fn func(any), arg any) {
	p.col.IncH(p.hCrossMsgs, 1)
	j := p.newCrossJob(from, p.racks[ownerIdx], node, bytes, fn, arg)
	from.fab.TraverseEgressArg(crossToUplink, j)
}

// crossToUplink: the packet left the borrower's egress pipeline; cross
// the interconnect.
func crossToUplink(x any) {
	j := x.(*crossJob)
	j.p.ic.Send(j.from.idx, j.owner.idx, j.bytes, crossAtOwner, j)
}

// crossAtOwner: the packet arrived at the owning rack's switch;
// traverse its ingress pipeline.
func crossAtOwner(x any) {
	j := x.(*crossJob)
	j.owner.fab.TraverseIngressArg(crossOwnerToBlade, j)
}

// crossOwnerToBlade: the owner's data plane forwards to the blade (its
// egress + the blade's NIC), completing the route.
func crossOwnerToBlade(x any) {
	j := x.(*crossJob)
	owner, node, bytes := j.owner, j.node, j.bytes
	fn, arg := j.p.freeCrossJob(j)
	owner.fab.SendFromSwitchArg(node, bytes, fn, arg)
}

// crossFromBlade routes blade NIC -> owner switch -> interconnect ->
// borrower switch (the mirror of crossToBlade).
func (p *Pod) crossFromBlade(to *Rack, ownerIdx int, node fabric.NodeID, bytes int, fn func(any), arg any) {
	p.col.IncH(p.hCrossMsgs, 1)
	j := p.newCrossJob(to, p.racks[ownerIdx], node, bytes, fn, arg)
	j.owner.fab.SendToSwitchArg(node, bytes, crossBladeAtOwner, j)
}

// crossBladeAtOwner: the blade's message traversed the owner's ingress;
// forward it through the owner's egress into the interconnect.
func crossBladeAtOwner(x any) {
	j := x.(*crossJob)
	j.owner.fab.TraverseEgressArg(crossFromUplink, j)
}

// crossFromUplink: cross the interconnect toward the borrower.
func crossFromUplink(x any) {
	j := x.(*crossJob)
	j.p.ic.Send(j.owner.idx, j.from.idx, j.bytes, crossAtBorrower, j)
}

// crossAtBorrower: arrival at the borrower's switch; one ingress
// traversal and the data-plane continuation runs.
func crossAtBorrower(x any) {
	j := x.(*crossJob)
	from := j.from
	fn, arg := j.p.freeCrossJob(j)
	from.fab.TraverseIngressArg(fn, arg)
}
