// elastic: the paper's headline property — transparent compute
// elasticity (§1). A job starts on ONE compute blade; halfway through,
// six more threads join on three other blades with zero application
// changes: same process, same pointers, same shared data structures. The
// in-network MMU makes the new blades first-class participants
// immediately.
//
// Systems like FastSwap cannot do this step at all (§2.2): their
// processes are confined to a single blade.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"

	"mind/internal/core"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

const (
	chunks     = 512 // work items, each one page of input
	opsPer     = 400 // accesses to process one chunk
	initial    = 2   // threads before scale-out
	scaled     = 8   // threads after
	bladeCount = 4
)

func main() {
	cfg := core.DefaultConfig(bladeCount, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	proc := cluster.Exec("elastic-job")

	// Shared state: the input chunks and a results array all threads
	// write — one address space, visible from every blade.
	input, err := proc.Mmap(chunks*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		log.Fatal(err)
	}
	results, err := proc.Mmap(chunks*8, mem.PermReadWrite)
	if err != nil {
		log.Fatal(err)
	}

	// Each worker claims a static slice of chunks (workers know their
	// index and the final worker count up front; the elasticity being
	// demonstrated is in the MEMORY system, not a work-stealing queue).
	worker := func(idx int) core.AccessGen {
		lo := chunks * idx / scaled
		hi := chunks * (idx + 1) / scaled
		chunk, op := lo, 0
		return func() (mem.VA, bool, bool) {
			if chunk >= hi {
				return 0, false, false
			}
			if op < opsPer {
				// Stream through the chunk's page.
				va := input.Base + mem.VA(chunk*mem.PageSize) + mem.VA((op*8)%mem.PageSize)
				op++
				return va, false, true
			}
			// Write the chunk's result to the shared results array.
			va := results.Base + mem.VA(chunk*8)
			chunk++
			op = 0
			return va, true, true
		}
	}

	// Phase 1: two threads on blade 0 only.
	var done int
	for i := 0; i < initial; i++ {
		th, err := proc.SpawnThread(0)
		if err != nil {
			log.Fatal(err)
		}
		th.Start(worker(i), func() { done++ })
	}
	phase1 := cluster.Now()
	// Let phase 1 run for a while, then scale out.
	cluster.AdvanceTime(20 * sim.Millisecond)
	fmt.Printf("phase 1: %d threads on 1 blade, t=%.2f ms\n",
		initial, cluster.Now().Sub(phase1).Seconds()*1e3)

	// Phase 2: six more threads join on blades 1-3. No migration, no
	// repartitioning, no new APIs — they just start working on the same
	// memory.
	scaleOutAt := cluster.Now()
	opsAtScaleOut := cluster.Collector().Counter(stats.CtrAccesses)
	for i := initial; i < scaled; i++ {
		th, err := proc.SpawnThread(1 + (i-initial)%(bladeCount-1))
		if err != nil {
			log.Fatal(err)
		}
		th.Start(worker(i), func() { done++ })
	}
	end := cluster.RunThreads()
	col := cluster.Collector()

	before := float64(opsAtScaleOut) / scaleOutAt.Sub(0).Seconds() / 1e6
	after := float64(col.Counter(stats.CtrAccesses)-opsAtScaleOut) /
		end.Sub(scaleOutAt).Seconds() / 1e6
	fmt.Printf("phase 2: scaled to %d threads on %d blades at t=%.2f ms; job done at t=%.2f ms\n",
		scaled, bladeCount, scaleOutAt.Sub(0).Seconds()*1e3, end.Sub(0).Seconds()*1e3)
	fmt.Printf("\nthroughput before scale-out: %.2f MOPS, after: %.2f MOPS (%.1fx)\n",
		before, after, after/before)
	fmt.Printf("%d/%d workers finished; %d accesses total, %d remote, %d invalidations\n",
		done, scaled,
		col.Counter(stats.CtrAccesses),
		col.Counter(stats.CtrRemoteAccesses),
		col.Counter(stats.CtrInvalidations))

	// Every result page written by any blade must be readable from blade
	// 2 through the coherence protocol (protection + translation +
	// directory all exercised).
	checker, err := proc.SpawnThread(2)
	if err != nil {
		log.Fatal(err)
	}
	for cidx := 0; cidx < chunks; cidx += 64 {
		if _, err := checker.Load(results.Base + mem.VA(cidx*8)); err != nil {
			log.Fatalf("cross-blade read of result %d: %v", cidx, err)
		}
	}
	fmt.Printf("cross-blade verification: result pages readable from blade 2\n")
}
