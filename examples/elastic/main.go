// elastic: the paper's headline property — transparent elasticity (§1),
// now on BOTH sides of the rack.
//
// Compute elasticity: a job starts on ONE compute blade; halfway
// through, six more threads join on three other blades with zero
// application changes: same process, same pointers, same shared data
// structures. The in-network MMU makes the new blades first-class
// participants immediately.
//
// Memory elasticity: while the scaled-out job is still running, a new
// memory blade hot-joins the rack and one of the original memory blades
// is live-drained — its resident pages migrate to the survivors in
// throttled batches, the TCAM gains outlier translation rules, and the
// directory state re-homes, all without stopping the workers. The
// drained blade ends the run empty and retired.
//
// Systems like FastSwap cannot do the compute step at all (§2.2), and
// no compute-side system can do the memory step: it needs the switch's
// global view of translations.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"mind/internal/core"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

const (
	initial    = 2 // threads before scale-out
	scaled     = 8 // threads after
	bladeCount = 4
)

func main() {
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; tiny shrinks the job for smoke tests.
func run(out io.Writer, tiny bool) error {
	chunks, opsPer := 512, 400 // work items (one page each), accesses per chunk
	if tiny {
		chunks, opsPer = 128, 80
	}
	cfg := core.DefaultConfig(bladeCount, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	proc := cluster.Exec("elastic-job")

	// Shared state: the input chunks and a results array all threads
	// write — one address space, visible from every blade.
	input, err := proc.Mmap(uint64(chunks)*mem.PageSize, mem.PermReadWrite)
	if err != nil {
		return err
	}
	results, err := proc.Mmap(uint64(chunks)*8, mem.PermReadWrite)
	if err != nil {
		return err
	}

	// Each worker claims a static slice of chunks (workers know their
	// index and the final worker count up front; the elasticity being
	// demonstrated is in the MEMORY system, not a work-stealing queue).
	worker := func(idx int) core.AccessGen {
		lo := chunks * idx / scaled
		hi := chunks * (idx + 1) / scaled
		chunk, op := lo, 0
		return func() (mem.VA, bool, bool) {
			if chunk >= hi {
				return 0, false, false
			}
			if op < opsPer {
				// Stream through the chunk's page.
				va := input.Base + mem.VA(chunk)*mem.PageSize + mem.VA((op*8)%mem.PageSize)
				op++
				return va, false, true
			}
			// Write the chunk's result to the shared results array.
			va := results.Base + mem.VA(chunk*8)
			chunk++
			op = 0
			return va, true, true
		}
	}

	// Load the dataset: one seed value per input chunk, written through
	// the shared-memory API from blade 0. These bytes are what the live
	// drain below must carry to the surviving blades intact.
	loader, err := proc.SpawnThread(0)
	if err != nil {
		return err
	}
	seed := func(cidx int) uint64 { return uint64(cidx)*2654435761 + 1 }
	for cidx := 0; cidx < chunks; cidx++ {
		if err := loader.Store(input.Base+mem.VA(cidx)*mem.PageSize, seed(cidx)); err != nil {
			return err
		}
	}

	// Phase 1: two threads on blade 0 only.
	var done int
	for i := 0; i < initial; i++ {
		th, err := proc.SpawnThread(0)
		if err != nil {
			return err
		}
		th.Start(worker(i), func() { done++ })
	}
	phase1 := cluster.Now()
	// Let phase 1 run for a while, then scale out.
	cluster.AdvanceTime(20 * sim.Millisecond)
	fmt.Fprintf(out, "phase 1: %d threads on 1 blade, t=%.2f ms\n",
		initial, cluster.Now().Sub(phase1).Seconds()*1e3)

	// Phase 2: six more threads join on blades 1-3. No migration, no
	// repartitioning, no new APIs — they just start working on the same
	// memory.
	scaleOutAt := cluster.Now()
	opsAtScaleOut := cluster.Collector().Counter(stats.CtrAccesses)
	for i := initial; i < scaled; i++ {
		th, err := proc.SpawnThread(1 + (i-initial)%(bladeCount-1))
		if err != nil {
			return err
		}
		th.Start(worker(i), func() { done++ })
	}

	// Phase 3: the MEMORY side scales too, while the job runs. A new
	// memory blade joins, and the blade hosting the input pages is
	// live-drained onto the survivors.
	victim, err := cluster.Controller().Allocator().Translate(input.Base)
	if err != nil {
		return err
	}
	added, err := cluster.AddMemBlade(0)
	if err != nil {
		return err
	}
	var drep core.DrainReport
	var derr error
	drained := false
	drainAt := cluster.Now().Add(2 * sim.Millisecond)
	cluster.Engine().At(drainAt, func() {
		cluster.DrainMemBladeAsync(victim, func(r core.DrainReport, e error) {
			drep, derr, drained = r, e, true
		})
	})
	fmt.Fprintf(out, "phase 2: scaled to %d threads on %d blades; memory blade %d hot-joined, draining blade %d live\n",
		scaled, bladeCount, added, victim)

	end := cluster.RunThreads()
	col := cluster.Collector()

	before := float64(opsAtScaleOut) / scaleOutAt.Sub(0).Seconds() / 1e6
	after := float64(col.Counter(stats.CtrAccesses)-opsAtScaleOut) /
		end.Sub(scaleOutAt).Seconds() / 1e6
	fmt.Fprintf(out, "job done at t=%.2f ms; throughput before scale-out: %.2f MOPS, after: %.2f MOPS (%.1fx)\n",
		end.Sub(0).Seconds()*1e3, before, after, after/before)
	fmt.Fprintf(out, "%d/%d workers finished; %d accesses total, %d remote, %d invalidations\n",
		done, scaled,
		col.Counter(stats.CtrAccesses),
		col.Counter(stats.CtrRemoteAccesses),
		col.Counter(stats.CtrInvalidations))

	if !drained {
		return fmt.Errorf("drain of blade %d never completed", victim)
	}
	if derr != nil {
		return fmt.Errorf("drain of blade %d: %w", victim, derr)
	}
	fmt.Fprintf(out, "\nmemory elasticity: drained blade %d in %.2f ms — %d vmas re-homed, %d pages migrated in %d batches, %d requests briefly stalled\n",
		victim, drep.Blackout().Seconds()*1e3, drep.Allocations, drep.PagesMoved, drep.Batches,
		col.Counter(stats.CtrMigrationStalls))
	if n := cluster.MemBlade(int(victim)).MaterializedPages(); n != 0 {
		return fmt.Errorf("drained blade still holds %d pages", n)
	}
	if !cluster.Controller().Allocator().BladeRetired(victim) {
		return fmt.Errorf("drained blade not retired")
	}

	// Every input page's seed value must have survived the live
	// migration bit for bit, readable from blade 2 through the coherence
	// protocol (protection + translation + directory all exercised) —
	// and nothing may resolve to the drained blade anymore.
	checker, err := proc.SpawnThread(2)
	if err != nil {
		return err
	}
	for cidx := 0; cidx < chunks; cidx++ {
		va := input.Base + mem.VA(cidx)*mem.PageSize
		if home, err := cluster.Controller().Allocator().Translate(va); err != nil {
			return fmt.Errorf("translate chunk %d: %w", cidx, err)
		} else if home == ctrlplane.BladeID(victim) {
			return fmt.Errorf("chunk %d still routed to drained blade", cidx)
		}
		got, err := checker.Load(va)
		if err != nil {
			return fmt.Errorf("cross-blade read of chunk %d: %v", cidx, err)
		}
		if got != seed(cidx) {
			return fmt.Errorf("chunk %d lost in migration: %#x, want %#x", cidx, got, seed(cidx))
		}
	}
	for cidx := 0; cidx < chunks; cidx += 64 {
		if _, err := checker.Load(results.Base + mem.VA(cidx*8)); err != nil {
			return fmt.Errorf("cross-blade read of result %d: %v", cidx, err)
		}
	}
	// And writes still commit end to end on the post-drain rack.
	probe := results.Base
	if err := checker.Store(probe, 0xe1a571c); err != nil {
		return err
	}
	v, err := checker.Load(probe)
	if err != nil {
		return fmt.Errorf("post-drain probe read: %w", err)
	}
	if v != 0xe1a571c {
		return fmt.Errorf("post-drain store lost: %#x", v)
	}
	fmt.Fprintf(out, "cross-blade verification: dataset intact after live migration, none routed to blade %d\n", victim)
	return nil
}
