// kvstore: the paper's "Native-KVS" (§7.1) — a key-value store written
// directly against MIND's transparent shared memory. Handles on four
// different compute blades operate on one store with no KVS-level
// replication or messaging; the in-network coherence protocol keeps them
// consistent.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"mind/internal/core"
	"mind/internal/kvs"
	"mind/internal/sim"
	"mind/internal/stats"
)

func main() {
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; tiny shrinks the key count for smoke tests.
func run(out io.Writer, tiny bool) error {
	keysPerBlade := 200
	if tiny {
		keysPerBlade = 40
	}
	cfg := core.DefaultConfig(4, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 2048
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	proc := cluster.Exec("kvstore")

	// One thread (client handle) per compute blade.
	var handles []*kvs.Store
	owner, err := proc.SpawnThread(0)
	if err != nil {
		return err
	}
	store, err := kvs.Create(proc, owner, 1024, 4<<20)
	if err != nil {
		return err
	}
	handles = append(handles, store)
	for b := 1; b < 4; b++ {
		th, err := proc.SpawnThread(b)
		if err != nil {
			return err
		}
		handles = append(handles, kvs.Attach(th, store.Base(), 1024))
	}

	// A YCSB-flavoured workload: each blade inserts its own keys, then
	// every blade reads everyone's keys.
	rng := sim.NewRNG(7, "kvstore-example")
	for b, h := range handles {
		for i := 0; i < keysPerBlade; i++ {
			key := fmt.Sprintf("blade%d/key%03d", b, i)
			val := fmt.Sprintf("value-%d", rng.Uint64n(1_000_000))
			if err := h.Put([]byte(key), []byte(val)); err != nil {
				return fmt.Errorf("put %s: %w", key, err)
			}
		}
	}
	fmt.Fprintf(out, "loaded %d keys from 4 blades (t=%v)\n", 4*keysPerBlade, cluster.Now())

	misses := 0
	for _, h := range handles {
		for b := 0; b < 4; b++ {
			for i := 0; i < keysPerBlade; i += 17 {
				key := fmt.Sprintf("blade%d/key%03d", b, i)
				if _, found, err := h.Get([]byte(key)); err != nil {
					return err
				} else if !found {
					misses++
				}
			}
		}
	}
	fmt.Fprintf(out, "cross-blade read check: %d misses (want 0), t=%v\n", misses, cluster.Now())
	if misses != 0 {
		return fmt.Errorf("%d cross-blade misses, want 0", misses)
	}

	// Update from one blade, observe from another.
	if err := handles[2].Put([]byte("blade0/key000"), []byte("overwritten-by-blade-2")); err != nil {
		return err
	}
	v, _, err := handles[0].Get([]byte("blade0/key000"))
	if err != nil {
		return err
	}
	if string(v) != "overwritten-by-blade-2" {
		return fmt.Errorf("blade 0 sees %q, want blade 2's update", v)
	}
	fmt.Fprintf(out, "blade 0 sees blade 2's update: %q\n", v)

	col := cluster.Collector()
	fmt.Fprintf(out, "\ncoherence under the hood: %d invalidations, %d flushed pages, %d false invalidations\n",
		col.Counter(stats.CtrInvalidations),
		col.Counter(stats.CtrFlushedPages),
		col.Counter(stats.CtrFalseInvals))
	return nil
}
