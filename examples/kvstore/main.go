// kvstore: the paper's "Native-KVS" (§7.1) — a key-value store written
// directly against MIND's transparent shared memory. Handles on four
// different compute blades operate on one store with no KVS-level
// replication or messaging; the in-network coherence protocol keeps them
// consistent.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"mind/internal/core"
	"mind/internal/kvs"
	"mind/internal/sim"
	"mind/internal/stats"
)

func main() {
	cfg := core.DefaultConfig(4, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 2048
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	proc := cluster.Exec("kvstore")

	// One thread (client handle) per compute blade.
	var handles []*kvs.Store
	owner, err := proc.SpawnThread(0)
	if err != nil {
		log.Fatal(err)
	}
	store, err := kvs.Create(proc, owner, 1024, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	handles = append(handles, store)
	for b := 1; b < 4; b++ {
		th, err := proc.SpawnThread(b)
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, kvs.Attach(th, store.Base(), 1024))
	}

	// A YCSB-flavoured workload: each blade inserts its own keys, then
	// every blade reads everyone's keys.
	const keysPerBlade = 200
	rng := sim.NewRNG(7, "kvstore-example")
	for b, h := range handles {
		for i := 0; i < keysPerBlade; i++ {
			key := fmt.Sprintf("blade%d/key%03d", b, i)
			val := fmt.Sprintf("value-%d", rng.Uint64n(1_000_000))
			if err := h.Put([]byte(key), []byte(val)); err != nil {
				log.Fatalf("put %s: %v", key, err)
			}
		}
	}
	fmt.Printf("loaded %d keys from 4 blades (t=%v)\n", 4*keysPerBlade, cluster.Now())

	misses := 0
	for _, h := range handles {
		for b := 0; b < 4; b++ {
			for i := 0; i < keysPerBlade; i += 17 {
				key := fmt.Sprintf("blade%d/key%03d", b, i)
				if _, found, err := h.Get([]byte(key)); err != nil {
					log.Fatal(err)
				} else if !found {
					misses++
				}
			}
		}
	}
	fmt.Printf("cross-blade read check: %d misses (want 0), t=%v\n", misses, cluster.Now())

	// Update from one blade, observe from another.
	if err := handles[2].Put([]byte("blade0/key000"), []byte("overwritten-by-blade-2")); err != nil {
		log.Fatal(err)
	}
	v, _, err := handles[0].Get([]byte("blade0/key000"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blade 0 sees blade 2's update: %q\n", v)

	col := cluster.Collector()
	fmt.Printf("\ncoherence under the hood: %d invalidations, %d flushed pages, %d false invalidations\n",
		col.Counter(stats.CtrInvalidations),
		col.Counter(stats.CtrFlushedPages),
		col.Counter(stats.CtrFalseInvals))
}
