package main

import (
	"io"
	"testing"
)

// TestSmoke runs the example's full path at tiny scale; CI exercises it
// in short mode.
func TestSmoke(t *testing.T) {
	if err := run(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
