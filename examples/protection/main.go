// protection: MIND's capability-style memory protection (§4.2). A server
// process creates one protection domain per client session, so one
// session can never read another session's buffers — enforced by TCAM
// range matches in the switch data plane, with richer semantics than
// per-process Unix permissions.
//
//	go run ./examples/protection
package main

import (
	"errors"
	"fmt"
	"log"

	"mind/internal/core"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
)

func main() {
	cfg := core.DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	server := cluster.Exec("database-server")
	worker, err := server.SpawnThread(0)
	if err != nil {
		log.Fatal(err)
	}

	// Two client sessions, each with a private buffer and its own
	// protection domain.
	type session struct {
		name   string
		domain mem.PDID
		buf    mem.VMA
	}
	var sessions []session
	for _, name := range []string{"alice", "bob"} {
		buf, err := server.Mmap(64<<10, mem.PermReadWrite)
		if err != nil {
			log.Fatal(err)
		}
		d := server.CreateDomain()
		// The session may read and write its own buffer...
		if err := server.GrantDomain(d, buf.Base, 64<<10, mem.PermReadWrite); err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, session{name: name, domain: d, buf: buf})
		fmt.Printf("session %-5s -> domain %d, buffer %#x\n", name, d, uint64(buf.Base))
	}

	// The server itself (PID domain) fills both buffers.
	if err := worker.Store(sessions[0].buf.Base, 0xA11CE); err != nil {
		log.Fatal(err)
	}
	if err := worker.Store(sessions[1].buf.Base, 0xB0B); err != nil {
		log.Fatal(err)
	}

	prot := cluster.Controller().Protection()
	check := func(who session, target session, want mem.Perm) {
		err := prot.Check(who.domain, target.buf.Base, want)
		verdict := "ALLOWED"
		if err != nil {
			verdict = "DENIED"
		}
		fmt.Printf("  %s -> %s buffer (%v): %s\n", who.name, target.name, want, verdict)
	}

	fmt.Println("\ndata-plane permission checks:")
	check(sessions[0], sessions[0], mem.PermReadWrite) // alice -> alice: allowed
	check(sessions[0], sessions[1], mem.PermRead)      // alice -> bob: denied
	check(sessions[1], sessions[1], mem.PermRead)      // bob -> bob: allowed
	check(sessions[1], sessions[0], mem.PermReadWrite) // bob -> alice: denied

	// Downgrade alice to read-only (e.g. the session turned into a
	// follower) and verify writes now bounce.
	if err := server.GrantDomain(sessions[0].domain, sessions[0].buf.Base, 64<<10, mem.PermRead); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter downgrading alice to read-only:")
	check(sessions[0], sessions[0], mem.PermRead)
	check(sessions[0], sessions[0], mem.PermReadWrite)

	// The enforcement is in the fault path too: a thread with no grant
	// on an address gets EACCES from the switch.
	if err := worker.Touch(0x10, false); !errors.Is(err, ctrlplane.ErrPermission) {
		log.Fatalf("unmapped access should be denied, got %v", err)
	}
	fmt.Println("\nunmapped access rejected by the data plane (EACCES)")
	fmt.Printf("protection rejects so far: %d\n", prot.Rejects())
}
