// protection: MIND's capability-style memory protection (§4.2). A server
// process creates one protection domain per client session, so one
// session can never read another session's buffers — enforced by TCAM
// range matches in the switch data plane, with richer semantics than
// per-process Unix permissions.
//
//	go run ./examples/protection
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"mind/internal/core"
	"mind/internal/ctrlplane"
	"mind/internal/mem"
)

func main() {
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; tiny is accepted for smoke-test symmetry
// with the other examples (this one is already tiny).
func run(out io.Writer, tiny bool) error {
	_ = tiny
	cfg := core.DefaultConfig(2, 1)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 512
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	server := cluster.Exec("database-server")
	worker, err := server.SpawnThread(0)
	if err != nil {
		return err
	}

	// Two client sessions, each with a private buffer and its own
	// protection domain.
	type session struct {
		name   string
		domain mem.PDID
		buf    mem.VMA
	}
	var sessions []session
	for _, name := range []string{"alice", "bob"} {
		buf, err := server.Mmap(64<<10, mem.PermReadWrite)
		if err != nil {
			return err
		}
		d := server.CreateDomain()
		// The session may read and write its own buffer...
		if err := server.GrantDomain(d, buf.Base, 64<<10, mem.PermReadWrite); err != nil {
			return err
		}
		sessions = append(sessions, session{name: name, domain: d, buf: buf})
		fmt.Fprintf(out, "session %-5s -> domain %d, buffer %#x\n", name, d, uint64(buf.Base))
	}

	// The server itself (PID domain) fills both buffers.
	if err := worker.Store(sessions[0].buf.Base, 0xA11CE); err != nil {
		return err
	}
	if err := worker.Store(sessions[1].buf.Base, 0xB0B); err != nil {
		return err
	}

	prot := cluster.Controller().Protection()
	check := func(who session, target session, want mem.Perm, wantAllowed bool) error {
		err := prot.Check(who.domain, target.buf.Base, want)
		verdict := "ALLOWED"
		if err != nil {
			verdict = "DENIED"
		}
		fmt.Fprintf(out, "  %s -> %s buffer (%v): %s\n", who.name, target.name, want, verdict)
		if (err == nil) != wantAllowed {
			return fmt.Errorf("%s -> %s (%v): got %s", who.name, target.name, want, verdict)
		}
		return nil
	}

	fmt.Fprintln(out, "\ndata-plane permission checks:")
	for _, c := range []error{
		check(sessions[0], sessions[0], mem.PermReadWrite, true),  // alice -> alice
		check(sessions[0], sessions[1], mem.PermRead, false),      // alice -> bob
		check(sessions[1], sessions[1], mem.PermRead, true),       // bob -> bob
		check(sessions[1], sessions[0], mem.PermReadWrite, false), // bob -> alice
	} {
		if c != nil {
			return c
		}
	}

	// Downgrade alice to read-only (e.g. the session turned into a
	// follower) and verify writes now bounce.
	if err := server.GrantDomain(sessions[0].domain, sessions[0].buf.Base, 64<<10, mem.PermRead); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nafter downgrading alice to read-only:")
	if err := check(sessions[0], sessions[0], mem.PermRead, true); err != nil {
		return err
	}
	if err := check(sessions[0], sessions[0], mem.PermReadWrite, false); err != nil {
		return err
	}

	// The enforcement is in the fault path too: a thread with no grant
	// on an address gets EACCES from the switch.
	if err := worker.Touch(0x10, false); !errors.Is(err, ctrlplane.ErrPermission) {
		return fmt.Errorf("unmapped access should be denied, got %v", err)
	}
	fmt.Fprintln(out, "\nunmapped access rejected by the data plane (EACCES)")
	fmt.Fprintf(out, "protection rejects so far: %d\n", prot.Rejects())
	return nil
}
