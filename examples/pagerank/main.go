// pagerank: the GraphChi-style workload of the paper's intro — an
// iterative PageRank whose vertex ranks live in MIND shared memory.
// Worker threads on four compute blades each own a partition of the
// vertices; they read neighbour ranks written by workers on *other*
// blades directly through the shared address space.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"mind/internal/core"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
)

const (
	blades  = 4
	damping = 0.85
	// Ranks are stored as fixed-point uint64 (1e9 = 1.0) since the
	// shared-memory API moves integers.
	fixed = 1_000_000_000
)

func main() {
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; tiny shrinks the graph for smoke tests.
func run(out io.Writer, tiny bool) error {
	vertices, iters := 256, 12
	if tiny {
		vertices, iters = 64, 4
	}
	cfg := core.DefaultConfig(blades, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 1024
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	proc := cluster.Exec("pagerank")

	// Shared layout: ranks[vertices] and next[vertices], 8 bytes each.
	area, err := proc.Mmap(uint64(2*vertices*8), mem.PermReadWrite)
	if err != nil {
		return err
	}
	rankAt := func(v int) mem.VA { return area.Base + mem.VA(v*8) }
	nextAt := func(v int) mem.VA { return area.Base + mem.VA((vertices+v)*8) }

	// A deterministic power-law-ish digraph: vertex v links to a handful
	// of earlier vertices (preferential attachment flavour).
	rng := sim.NewRNG(42, "pagerank-graph")
	outEdges := make([][]int, vertices)
	in := make([][]int, vertices)
	for v := 1; v < vertices; v++ {
		deg := 1 + rng.Intn(4)
		for e := 0; e < deg; e++ {
			to := rng.Intn(v)
			outEdges[v] = append(outEdges[v], to)
			in[to] = append(in[to], v)
		}
	}
	// No dangling vertices: rank mass must be conserved.
	for v := 0; v < vertices; v++ {
		if len(outEdges[v]) == 0 {
			to := (v + 1) % vertices
			outEdges[v] = append(outEdges[v], to)
			in[to] = append(in[to], v)
		}
	}

	var workers []*core.Thread
	for b := 0; b < blades; b++ {
		th, err := proc.SpawnThread(b)
		if err != nil {
			return err
		}
		workers = append(workers, th)
	}

	// Initialize ranks to 1/V from blade 0.
	init := uint64(fixed / vertices)
	for v := 0; v < vertices; v++ {
		if err := workers[0].Store(rankAt(v), init); err != nil {
			return err
		}
	}

	part := vertices / blades
	for it := 0; it < iters; it++ {
		// Each worker computes next[] for its vertex partition, reading
		// neighbour ranks that other blades wrote in the previous
		// iteration (cross-blade shared reads).
		for b, w := range workers {
			for v := b * part; v < (b+1)*part; v++ {
				sum := uint64(0)
				for _, u := range in[v] {
					r, err := w.Load(rankAt(u))
					if err != nil {
						return err
					}
					sum += r / uint64(len(outEdges[u]))
				}
				teleport := (1 - damping) * float64(fixed) / float64(vertices)
				nr := uint64(teleport) + uint64(damping*float64(sum))
				if err := w.Store(nextAt(v), nr); err != nil {
					return err
				}
			}
		}
		// Swap next into ranks (each worker copies its partition).
		for b, w := range workers {
			for v := b * part; v < (b+1)*part; v++ {
				nr, err := w.Load(nextAt(v))
				if err != nil {
					return err
				}
				if err := w.Store(rankAt(v), nr); err != nil {
					return err
				}
			}
		}
	}

	// Report: total must be ~1.0 and the hubs should outrank the tail.
	var total float64
	best, bestV := 0.0, -1
	for v := 0; v < vertices; v++ {
		r, err := workers[0].Load(rankAt(v))
		if err != nil {
			return err
		}
		f := float64(r) / fixed
		total += f
		if f > best {
			best, bestV = f, v
		}
	}
	fmt.Fprintf(out, "pagerank over %d vertices on %d blades, %d iterations (t=%v)\n",
		vertices, blades, iters, cluster.Now())
	fmt.Fprintf(out, "rank mass = %.4f (want ~1.0), top vertex %d with rank %.4f\n", total, bestV, best)
	if math.Abs(total-1) > 0.05 {
		return fmt.Errorf("rank mass diverged: %v", total)
	}

	col := cluster.Collector()
	fmt.Fprintf(out, "coherence: %d remote accesses, %d invalidations, %d flushed pages\n",
		col.Counter(stats.CtrRemoteAccesses),
		col.Counter(stats.CtrInvalidations),
		col.Counter(stats.CtrFlushedPages))
	return nil
}
