// Quickstart: build a two-blade MIND rack, allocate shared memory through
// the switch control plane, and watch the in-network MSI protocol keep
// two compute blades coherent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mind/internal/core"
	"mind/internal/mem"
	"mind/internal/stats"
)

func main() {
	// A rack with 2 compute blades and 2 memory blades behind one
	// programmable switch.
	cfg := core.DefaultConfig(2, 2)
	cfg.MemoryBladeCapacity = 1 << 28 // 256 MB per memory blade
	cfg.CachePagesPerBlade = 1024     // 4 MB local DRAM cache per blade
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Start a process; its threads may run on any compute blade while
	// transparently sharing one address space.
	proc := cluster.Exec("quickstart")
	vma, err := proc.Mmap(1<<20, mem.PermReadWrite) // 1 MB shared area
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mmap -> vma at %#x (+%d KB) on the global address space\n",
		uint64(vma.Base), vma.Len>>10)

	t0, err := proc.SpawnThread(0)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := proc.SpawnThread(1)
	if err != nil {
		log.Fatal(err)
	}

	// Blade 0 writes; the directory at the switch grants it ownership
	// (I->M).
	if err := t0.Store(vma.Base, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blade 0 stored 42 at %#x (t=%v)\n", uint64(vma.Base), cluster.Now())

	// Blade 1 reads the same address: the switch downgrades blade 0
	// (M->S), blade 0 flushes the dirty page, and blade 1 fetches it.
	v, err := t1.Load(vma.Base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blade 1 loaded %d             (t=%v)\n", v, cluster.Now())

	// Blade 1 takes ownership (S->M, invalidating blade 0 in parallel
	// with the fetch) and writes.
	if err := t1.Store(vma.Base, 1234); err != nil {
		log.Fatal(err)
	}
	v, err = t0.Load(vma.Base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blade 0 re-loaded %d        (t=%v)\n", v, cluster.Now())

	col := cluster.Collector()
	fmt.Printf("\nprotocol activity: %d remote accesses, %d invalidations, %d flushed pages\n",
		col.Counter(stats.CtrRemoteAccesses),
		col.Counter(stats.CtrInvalidations),
		col.Counter(stats.CtrFlushedPages))
	fmt.Printf("switch resources:  %d match-action rules, %d directory entries\n",
		cluster.Controller().ASIC().Rules(),
		cluster.Controller().ASIC().Directory.InUse())
}
