// Quickstart: build a two-blade MIND rack, allocate shared memory through
// the switch control plane, and watch the in-network MSI protocol keep
// two compute blades coherent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"mind/internal/core"
	"mind/internal/mem"
	"mind/internal/stats"
)

func main() {
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run executes the example; tiny is accepted for smoke-test symmetry
// with the other examples (this one is already tiny).
func run(out io.Writer, tiny bool) error {
	_ = tiny
	// A rack with 2 compute blades and 2 memory blades behind one
	// programmable switch.
	cfg := core.DefaultConfig(2, 2)
	cfg.MemoryBladeCapacity = 1 << 28 // 256 MB per memory blade
	cfg.CachePagesPerBlade = 1024     // 4 MB local DRAM cache per blade
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}

	// Start a process; its threads may run on any compute blade while
	// transparently sharing one address space.
	proc := cluster.Exec("quickstart")
	vma, err := proc.Mmap(1<<20, mem.PermReadWrite) // 1 MB shared area
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mmap -> vma at %#x (+%d KB) on the global address space\n",
		uint64(vma.Base), vma.Len>>10)

	t0, err := proc.SpawnThread(0)
	if err != nil {
		return err
	}
	t1, err := proc.SpawnThread(1)
	if err != nil {
		return err
	}

	// Blade 0 writes; the directory at the switch grants it ownership
	// (I->M).
	if err := t0.Store(vma.Base, 42); err != nil {
		return err
	}
	fmt.Fprintf(out, "blade 0 stored 42 at %#x (t=%v)\n", uint64(vma.Base), cluster.Now())

	// Blade 1 reads the same address: the switch downgrades blade 0
	// (M->S), blade 0 flushes the dirty page, and blade 1 fetches it.
	v, err := t1.Load(vma.Base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "blade 1 loaded %d             (t=%v)\n", v, cluster.Now())

	// Blade 1 takes ownership (S->M, invalidating blade 0 in parallel
	// with the fetch) and writes.
	if err := t1.Store(vma.Base, 1234); err != nil {
		return err
	}
	v, err = t0.Load(vma.Base)
	if err != nil {
		return err
	}
	if v != 1234 {
		return fmt.Errorf("blade 0 re-loaded %d, want 1234 (coherence broken)", v)
	}
	fmt.Fprintf(out, "blade 0 re-loaded %d        (t=%v)\n", v, cluster.Now())

	col := cluster.Collector()
	fmt.Fprintf(out, "\nprotocol activity: %d remote accesses, %d invalidations, %d flushed pages\n",
		col.Counter(stats.CtrRemoteAccesses),
		col.Counter(stats.CtrInvalidations),
		col.Counter(stats.CtrFlushedPages))
	fmt.Fprintf(out, "switch resources:  %d match-action rules, %d directory entries\n",
		cluster.Controller().ASIC().Rules(),
		cluster.Controller().ASIC().Directory.InUse())
	return nil
}
