package mind_test

// The benchmark harness: one benchmark per figure of the paper's
// evaluation (§7, Figures 5-9) plus ablation benches for the design
// choices called out in DESIGN.md. Each figure bench regenerates its
// panel at the Tiny experiment scale and reports headline values through
// b.ReportMetric, so `go test -bench=.` walks the entire evaluation.
//
// Figure benches route through internal/runner (the experiments package
// fans every panel's data points across its worker pool), so wall time
// reflects the parallel harness; each iteration resets the run cache so
// repeated iterations measure real executions, not cache hits.
//
// Absolute values come from the calibrated simulator; the reproduction
// target is the paper's shapes (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"mind/internal/core"
	"mind/internal/ctrlplane"
	"mind/internal/experiments"
	"mind/internal/hotpath"
	"mind/internal/mem"
	"mind/internal/sim"
	"mind/internal/stats"
	"mind/internal/switchasic"
	"mind/internal/workloads"
)

// BenchmarkHotPathMacro is the tracked hot-path macro benchmark behind
// BENCH_hotpath.json (see cmd/bench and internal/hotpath): the fixed
// Fig-6-class TF workload on an 8-blade rack. CI runs it with
// -benchtime=1x as a smoke test; the reported metrics mirror the JSON
// report's fields. The simulation outputs are deterministic, so the
// events metric doubles as an identity check across revisions.
func BenchmarkHotPathMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkRackMacro is the rack-scale macro benchmark behind
// BENCH_rack.json: the GC (PageRank) mix on a 64-blade rack, 4 threads
// per blade. Sharer sets span the rack and the event queue runs deep, so
// this tracks the scale headroom of the per-event structures (calendar
// queue, sharer bitmaps, index-addressed tables) rather than per-op
// cost.
func BenchmarkRackMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.Rack())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkPodMacro is the pod-scale macro benchmark behind
// BENCH_pod.json: a 4-rack pod (16 compute blades per rack) running the
// GC+Memcached mix, with two memory-poor racks borrowing blades across
// the interconnect, so the cross-rack routing and interconnect queueing
// sit on the fault path.
func BenchmarkPodMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.PodScenario())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(float64(res.CrossRackMsgs), "cross-rack-msgs")
	}
}

// BenchmarkPodParMacro is the parallel-executor macro benchmark behind
// BENCH_podpar.json: a 32-rack pod run twice in one invocation — first
// serially, then on the windowed worker pool — with hotpath.Run failing
// outright if any simulation output diverges. The parallel-speedup
// metric is the events/sec ratio between the two runs.
func BenchmarkPodParMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.PodParScenario())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(float64(res.CrossRackMsgs), "cross-rack-msgs")
		b.ReportMetric(res.ParallelSpeedup, "parallel-speedup-x")
	}
}

// BenchmarkServeMacro is the serving macro benchmark behind
// BENCH_serve.json: three tenants (steady Poisson, MMPP burst behind a
// QoS token bucket, diurnal) inject open-loop arrivals into a 4-blade
// rack, so the arrival chains, admission control, and streaming
// histograms sit on the measured path alongside the fault protocol.
func BenchmarkServeMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.ServeScenario())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(float64(res.ServeThrottled), "throttled")
		b.ReportMetric(res.ServeP99Us, "steady-p99-us")
	}
}

// BenchmarkServeParMacro is the sharded-serving macro benchmark behind
// BENCH_servepar.json: a mixed tenant population placed across a
// 16-rack pod (memory-poor racks borrowing, two tenants spanning racks)
// injects open-loop arrivals from every rack's serving shard, run
// serially then on the windowed worker pool in one invocation —
// hotpath.Run fails outright if any simulation output diverges.
func BenchmarkServeParMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.ServeParScenario())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(float64(res.CrossRackMsgs), "cross-rack-msgs")
		b.ReportMetric(float64(res.ServeThrottled), "throttled")
		b.ReportMetric(res.ParallelSpeedup, "parallel-speedup-x")
	}
}

// BenchmarkServeKillMacro is the failure-injection macro benchmark
// behind BENCH_servekill.json: a 2-rack pod serves three open-loop
// tenants under deadlines, retries and brownout shedding while a kill
// storm lands (hot-add, borrowed-blade kill, switch failover, live
// drain), so the recovery machinery — migration batches, fault
// retransmits against a dead blade, retry backoff timers — sits on the
// measured path.
func BenchmarkServeKillMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hotpath.Run(hotpath.ServeKillScenario())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerOp, "sim-ns/op")
		b.ReportMetric(res.AllocsPerOp, "sim-allocs/op")
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(float64(res.ServeShed), "shed")
		b.ReportMetric(float64(res.ServeTimedOut), "timedout")
		b.ReportMetric(float64(res.ServeRetried), "retried")
		b.ReportMetric(float64(res.Kills), "kills")
	}
}

// BenchmarkFig5IntraBlade regenerates Figure 5 (left): intra-blade
// thread scaling of MIND vs FastSwap vs GAM.
func BenchmarkFig5IntraBlade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig5Left(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if m, ok := figs["TF"].Get("MIND", 10); ok {
			b.ReportMetric(m, "TF-MIND@10thr")
		}
		if g, ok := figs["TF"].Get("GAM", 10); ok {
			b.ReportMetric(g, "TF-GAM@10thr")
		}
	}
}

// BenchmarkFig5InterBlade regenerates Figure 5 (center): inter-blade
// scaling of MIND/MIND-PSO/MIND-PSO+/GAM.
func BenchmarkFig5InterBlade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig5Center(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if m, ok := figs["TF"].Get("MIND", 8); ok {
			b.ReportMetric(m, "TF-MIND@8blades")
		}
		if m, ok := figs["MA"].Get("MIND-PSO", 8); ok {
			b.ReportMetric(m, "MA-PSO@8blades")
		}
	}
}

// BenchmarkFig5NativeKVS regenerates Figure 5 (right): Native-KVS
// YCSB-A/C throughput.
func BenchmarkFig5NativeKVS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig5Right(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if m, ok := figs["YCSB-C"].Get("MIND(multi)", 80); ok {
			b.ReportMetric(m, "YCSB-C-MOPS@80thr")
		}
	}
}

// BenchmarkFig6InvalidationOverhead regenerates Figure 6: protocol event
// rates per access vs blade count.
func BenchmarkFig6InvalidationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig6(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := figs["MA"].Get("invalidations", 8); ok {
			b.ReportMetric(v, "MA-invals/access@8")
		}
	}
}

// BenchmarkFig7Transitions regenerates Figure 7 (left): per-transition
// MSI latencies.
func BenchmarkFig7Transitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		fig, err := experiments.Fig7Left(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.Get("S->S", 8); ok {
			b.ReportMetric(v, "S->S-us")
		}
		if v, ok := fig.Get("M->M", 8); ok {
			b.ReportMetric(v, "M->M-us")
		}
	}
}

// BenchmarkFig7Throughput regenerates Figure 7 (center): IOPS vs
// read/sharing ratio.
func BenchmarkFig7Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		fig, err := experiments.Fig7Center(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.Get("R=1.00", 1); ok {
			b.ReportMetric(v, "IOPS-read-only-shared")
		}
		if v, ok := fig.Get("R=0.00", 1); ok {
			b.ReportMetric(v, "IOPS-write-shared")
		}
	}
}

// BenchmarkFig7Breakdown regenerates Figure 7 (right): the remote-access
// latency breakdown.
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		fig, err := experiments.Fig7Right(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.Get("R=0.0/inv_tlb", 8); ok {
			b.ReportMetric(v, "inv-tlb-us@8blades")
		}
	}
}

// BenchmarkFig8Directory regenerates Figure 8 (left): directory entries
// over time under the capacity limit.
func BenchmarkFig8Directory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig8Left(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, s := range figs["MA"].Series {
			for _, y := range s.Y {
				if y > max {
					max = y
				}
			}
		}
		b.ReportMetric(max, "MA-peak-entries")
	}
}

// BenchmarkFig8Rules regenerates Figure 8 (center): match-action rules
// for MIND vs page-granularity translation.
func BenchmarkFig8Rules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		fig, err := experiments.Fig8Center(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.Get("MIND/TF", 8); ok {
			b.ReportMetric(v, "MIND-rules")
		}
		if v, ok := fig.Get("2MB/TF", 8); ok {
			b.ReportMetric(v, "2MB-rules")
		}
	}
}

// BenchmarkFig8Fairness regenerates Figure 8 (right): allocation load
// balance.
func BenchmarkFig8Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		fig, err := experiments.Fig8Right(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.Get("MIND/MA&C", 8); ok {
			b.ReportMetric(v, "MIND-fairness")
		}
		if v, ok := fig.Get("1GB/MA&C", 8); ok {
			b.ReportMetric(v, "1GB-fairness")
		}
	}
}

// BenchmarkFig9Tradeoff regenerates Figure 9 (left): fixed region
// granularities vs Bounded Splitting.
func BenchmarkFig9Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig9Left(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := figs["GC"].Get("false-invals", 5); ok {
			b.ReportMetric(v, "GC-BS-false-invals-norm")
		}
	}
}

// BenchmarkFig9Sensitivity regenerates Figure 9 (right): epoch and
// initial-region-size sensitivity.
func BenchmarkFig9Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		figs, err := experiments.Fig9Right(experiments.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := figs["TF"].Get("initial-size-sweep", 4); ok {
			b.ReportMetric(v, "TF-16KB-initial-norm")
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// newAblationCluster builds a small rack for protocol microbenches.
func newAblationCluster(b *testing.B, mutate func(*core.Config)) (*core.Cluster, *core.Process) {
	b.Helper()
	cfg := core.DefaultConfig(8, 2)
	cfg.MemoryBladeCapacity = 1 << 28
	cfg.CachePagesPerBlade = 4096
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c, c.Exec("ablation")
}

// sharedWriteLatency measures an S->M transition with 7 sharers.
func sharedWriteLatency(b *testing.B, c *core.Cluster, p *core.Process, page mem.VA) float64 {
	b.Helper()
	var threads []*core.Thread
	for i := 0; i < 8; i++ {
		th, err := p.SpawnThread(i)
		if err != nil {
			b.Fatal(err)
		}
		threads = append(threads, th)
	}
	for _, th := range threads[1:] {
		if err := th.Touch(page, false); err != nil {
			b.Fatal(err)
		}
	}
	start := c.Now()
	if err := threads[0].Touch(page, true); err != nil {
		b.Fatal(err)
	}
	return c.Now().Sub(start).Micros()
}

// BenchmarkAblationMulticast compares the switch's native multicast
// invalidation (§4.3.2) against sequential unicast: the multicast path
// must invalidate 7 sharers in roughly constant time.
func BenchmarkAblationMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, p := newAblationCluster(b, nil)
		vma, err := p.Mmap(1<<20, mem.PermReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		mc := sharedWriteLatency(b, c, p, vma.Base)

		c2, p2 := newAblationCluster(b, func(cfg *core.Config) {
			cfg.SequentialInvalidation = true
		})
		vma2, err := p2.Mmap(1<<20, mem.PermReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		seq := sharedWriteLatency(b, c2, p2, vma2.Base)

		b.ReportMetric(mc, "multicast-us")
		b.ReportMetric(seq, "sequential-us")
		if seq <= mc {
			b.Fatalf("sequential invalidation (%v us) should cost more than multicast (%v us)", seq, mc)
		}
	}
}

// BenchmarkAblationRecirculation measures the cost of the two-MAU +
// recirculation directory update (§6.3) by zeroing the recirculation
// delay.
func BenchmarkAblationRecirculation(b *testing.B) {
	measure := func(recirc bool) float64 {
		c, p := newAblationCluster(b, func(cfg *core.Config) {
			if !recirc {
				cfg.Fabric.RecircDelay = 0
			}
		})
		vma, err := p.Mmap(1<<20, mem.PermReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		th, err := p.SpawnThread(0)
		if err != nil {
			b.Fatal(err)
		}
		start := c.Now()
		const pages = 64
		for i := 0; i < pages; i++ {
			if err := th.Touch(vma.Base+mem.VA(i*mem.PageSize), false); err != nil {
				b.Fatal(err)
			}
		}
		return c.Now().Sub(start).Micros() / pages
	}
	for i := 0; i < b.N; i++ {
		with := measure(true)
		without := measure(false)
		b.ReportMetric(with, "with-recirc-us")
		b.ReportMetric(without, "no-recirc-us")
	}
}

// BenchmarkAblationPlacement compares allocation placement policies
// (§4.1) by Jain's fairness across 8 memory blades.
func BenchmarkAblationPlacement(b *testing.B) {
	trace := []uint64{1 << 20, 4 << 20, 64 << 10, 2 << 20, 8 << 20, 256 << 10, 1 << 20, 16 << 20}
	for i := 0; i < b.N; i++ {
		for _, pol := range []struct {
			name   string
			policy ctrlplane.PlacementPolicy
		}{
			{"least-loaded", ctrlplane.PlaceLeastLoaded},
			{"round-robin", ctrlplane.PlaceRoundRobin},
			{"first-fit", ctrlplane.PlaceFirstFit},
		} {
			ctl := ctrlplane.NewController(switchasic.DefaultConfig(), pol.policy, 8)
			for m := 0; m < 8; m++ {
				if _, err := ctl.Allocator().AddBlade(1 << 30); err != nil {
					b.Fatal(err)
				}
			}
			proc := ctl.Exec("bench")
			for r := 0; r < 16; r++ {
				for _, sz := range trace {
					if _, err := ctl.Mmap(proc.PID, sz, mem.PermReadWrite); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(stats.JainFairness(ctl.Allocator().BladeLoad()), pol.name+"-fairness")
		}
	}
}

// BenchmarkAblationExclusiveReads compares MSI against the MESI-style
// Exclusive grant (§8 "Other coherence protocols") on a private
// read-then-write sweep: the E grant removes the upgrade fault.
func BenchmarkAblationExclusiveReads(b *testing.B) {
	measure := func(exclusive bool) (float64, uint64) {
		c, p := newAblationCluster(b, func(cfg *core.Config) {
			cfg.ExclusiveReads = exclusive
		})
		vma, err := p.Mmap(8<<20, mem.PermReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		th, err := p.SpawnThread(0)
		if err != nil {
			b.Fatal(err)
		}
		start := c.Now()
		const pages = 256
		for i := 0; i < pages; i++ {
			va := vma.Base + mem.VA(i*mem.PageSize)
			if err := th.Touch(va, false); err != nil {
				b.Fatal(err)
			}
			if err := th.Touch(va, true); err != nil {
				b.Fatal(err)
			}
		}
		us := c.Now().Sub(start).Micros() / pages
		return us, c.Collector().Counter(stats.CtrRemoteAccesses)
	}
	for i := 0; i < b.N; i++ {
		msiUS, msiRemote := measure(false)
		mesiUS, mesiRemote := measure(true)
		b.ReportMetric(msiUS, "msi-us/page")
		b.ReportMetric(mesiUS, "mesi-us/page")
		if mesiRemote >= msiRemote {
			b.Fatalf("exclusive grant should cut remote accesses: %d vs %d", mesiRemote, msiRemote)
		}
	}
}

// BenchmarkAblationThreadAffinity explores the §8 "Thread management"
// direction: Native-KVS threads placed on the blade owning their key
// partition versus deliberately misplaced. Aligned placement turns most
// item traffic into local hits.
func BenchmarkAblationThreadAffinity(b *testing.B) {
	run := func(aligned bool) (float64, float64) {
		const blades = 4
		w := workloads.NativeKVS(0.5, 1)
		cfg := core.DefaultConfig(blades, 2)
		cfg.MemoryBladeCapacity = 1 << 30
		cfg.CachePagesPerBlade = int(w.Footprint / mem.PageSize / 2)
		c, err := core.NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := c.Exec("affinity")
		vma, err := p.Mmap(w.Footprint, mem.PermReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		// Two threads per partition: aligned placement co-locates each
		// partition's pair on one blade (their read-write sharing stays
		// in the local cache); misplaced splits every pair across blades,
		// turning that sharing into coherence traffic.
		const threads = 2 * blades
		params := workloads.Params{Threads: threads, Blades: blades, OpsPerThread: 20000, Seed: 5}
		for t := 0; t < threads; t++ {
			blade := t % blades // the partition this thread favours
			if !aligned {
				blade = (t%blades + t/blades) % blades
			}
			th, err := p.SpawnThread(blade)
			if err != nil {
				b.Fatal(err)
			}
			th.Start(w.Gen(vma.Base, t, params), nil)
		}
		end := c.RunThreads()
		col := c.Collector()
		mops := float64(col.Counter(stats.CtrAccesses)) / end.Sub(0).Seconds() / 1e6
		return mops, col.PerAccess(stats.CtrInvalidations)
	}
	for i := 0; i < b.N; i++ {
		alignedMOPS, alignedInv := run(true)
		misMOPS, misInv := run(false)
		b.ReportMetric(alignedMOPS, "aligned-MOPS")
		b.ReportMetric(misMOPS, "misplaced-MOPS")
		b.ReportMetric(alignedInv, "aligned-inv/access")
		b.ReportMetric(misInv, "misplaced-inv/access")
	}
}

// BenchmarkRemoteReadPath is the raw protocol microbench: one cold I->S
// page fault end to end.
func BenchmarkRemoteReadPath(b *testing.B) {
	_, p := newAblationCluster(b, nil)
	vma, err := p.Mmap(64<<20, mem.PermReadWrite)
	if err != nil {
		b.Fatal(err)
	}
	th, err := p.SpawnThread(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := vma.Base + mem.VA((i%8192)*mem.PageSize)
		if err := th.Touch(page, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOwnershipPingPong is the raw M->M transfer microbench between
// two blades.
func BenchmarkOwnershipPingPong(b *testing.B) {
	c, p := newAblationCluster(b, nil)
	vma, err := p.Mmap(1<<20, mem.PermReadWrite)
	if err != nil {
		b.Fatal(err)
	}
	t0, _ := p.SpawnThread(0)
	t1, _ := p.SpawnThread(1)
	_ = c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := t0
		if i%2 == 1 {
			th = t1
		}
		if err := th.Touch(vma.Base, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrainBatchSize measures the drain throttle's operating
// points: for each migration batch size, a 1024-page blade drains while
// a foreground thread streams accesses through the rack. Reported
// metrics are virtual: pages migrated per virtual millisecond of drain
// (drain bandwidth), the drain's blackout in virtual ms, and the
// foreground throughput achieved during the run (MOPS). Small batches
// keep the foreground fast but stretch the drain; big batches invert
// the tradeoff — DefaultMigrationConfig picks from this curve.
func BenchmarkDrainBatchSize(b *testing.B) {
	for _, batch := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(2, 2)
				cfg.MemoryBladeCapacity = 1 << 28
				cfg.CachePagesPerBlade = 512
				cfg.Migration.BatchPages = batch
				c, err := core.NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				proc := c.Exec("drain-bench")
				const pages = 1024
				// Two vmas: least-loaded placement puts one per blade.
				v0, err := proc.Mmap(pages*mem.PageSize, mem.PermReadWrite)
				if err != nil {
					b.Fatal(err)
				}
				v1, err := proc.Mmap(pages*mem.PageSize, mem.PermReadWrite)
				if err != nil {
					b.Fatal(err)
				}
				alloc := c.Controller().Allocator()
				victim, err := alloc.Translate(v0.Base)
				if err != nil {
					b.Fatal(err)
				}
				// Preload the victim's vma with real bytes so the drain
				// moves a full dataset.
				buf := make([]byte, mem.PageSize)
				for p := 0; p < pages; p++ {
					buf[0] = byte(p)
					c.MemBlade(int(victim)).WritePage(v0.Base+mem.VA(p)*mem.PageSize, buf)
				}
				// Foreground load over the survivor's vma.
				th, err := proc.SpawnThread(0)
				if err != nil {
					b.Fatal(err)
				}
				const ops = 20000
				j := 0
				th.Start(func() (mem.VA, bool, bool) {
					if j >= ops {
						return 0, false, false
					}
					va := v1.Base + mem.VA((j*7919)%(pages*mem.PageSize))
					j++
					return va, j%4 == 0, true
				}, nil)
				var rep core.DrainReport
				c.Engine().Schedule(100*sim.Microsecond, func() {
					c.DrainMemBladeAsync(victim, func(r core.DrainReport, e error) {
						rep = r
						if e != nil {
							b.Error(e)
						}
					})
				})
				end := c.RunThreads()
				if rep.PagesMoved != pages {
					b.Fatalf("moved %d pages, want %d", rep.PagesMoved, pages)
				}
				blackoutMS := rep.Blackout().Seconds() * 1e3
				b.ReportMetric(float64(rep.PagesMoved)/blackoutMS, "pages/vms")
				b.ReportMetric(blackoutMS, "blackout-vms")
				b.ReportMetric(float64(ops)/end.Sub(0).Seconds()/1e6, "fg-MOPS")
			}
		})
	}
}
