// Package mind is a from-scratch Go reproduction of "MIND: In-Network
// Memory Management for Disaggregated Data Centers" (SOSP 2021): a
// rack-scale disaggregated-memory system whose MMU — address translation,
// memory protection, and the cache-coherence directory — lives inside a
// programmable network switch.
//
// The paper's artifact is hardware-gated (Tofino switch ASIC, RDMA NICs,
// a modified Linux kernel), so this repository realizes the complete
// system over a deterministic discrete-event simulation of the rack and
// reproduces every figure of the paper's evaluation. See README.md for
// the architecture tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
//
// Every figure data point is an independent deterministic simulation
// run; internal/runner fans the runs of each panel across a worker pool
// and merges results in canonical order, so regeneration parallelizes
// across cores with bit-identical output.
//
// The root package holds no code; bench_test.go hosts the benchmark
// harness with one benchmark per evaluation figure plus the design-choice
// ablations.
package mind
